// Package storage is the on-disk bundle back-end of the paper's
// framework (Figure 4): finished bundles that no longer receive updates
// are flushed out of the in-memory pool and kept durably for later
// retrieval and analysis.
//
// Layout: a store directory holds append-only segment files
// (seg-000001.bls, seg-000002.bls, ...). Each segment starts with an
// 8-byte magic and carries length-prefixed, CRC32C-guarded records,
// one encoded bundle per record. An in-memory directory maps bundle ID
// to its newest record position; re-flushing a bundle supersedes the
// previous record (last write wins), and superseded records are dead
// weight until Compact rewrites live records into fresh segments.
//
// Recovery: Open scans every segment. A corrupt or torn record in the
// final segment truncates the tail (the torn-write case of a crash
// mid-append); corruption anywhere else is reported as an error, since
// sealed segments are never legitimately half-written.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"provex/internal/bundle"
)

var segMagic = [8]byte{'P', 'R', 'O', 'V', 'S', 'E', 'G', '1'}

const (
	recordHeaderSize = 8 // u32 length + u32 crc32c
	// DefaultSegmentSize rotates segments at 8 MiB, large enough to
	// amortise file overhead, small enough for cheap compaction.
	DefaultSegmentSize = 8 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNotFound reports a bundle ID absent from the store.
var ErrNotFound = errors.New("storage: bundle not found")

// ErrCorrupt reports an unreadable sealed segment.
var ErrCorrupt = errors.New("storage: corrupt segment")

// Options tune a Store.
type Options struct {
	// SegmentSize is the rotation threshold in bytes; 0 means
	// DefaultSegmentSize.
	SegmentSize int64
	// SyncEvery fsyncs the active segment after every n appends;
	// 0 disables explicit fsync (the OS flushes on its schedule).
	SyncEvery int
}

// recordPos locates a record inside a segment.
type recordPos struct {
	seg    int
	offset int64
	length int64 // payload length
}

// Store is the bundle store. Safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	active     *os.File
	activeSeg  int
	activeSize int64
	appends    int

	index     map[bundle.ID]recordPos
	deadBytes int64 // superseded record bytes, Compact trigger signal
	liveBytes int64
}

// Open opens (creating if needed) the store at dir and replays existing
// segments to rebuild the directory.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[bundle.ID]recordPos),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// segPath names segment n.
func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%06d.bls", n))
}

// listSegments returns existing segment numbers ascending.
func (s *Store) listSegments() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.bls", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// recover replays all segments, rebuilding the index. The final segment
// tolerates a torn tail, which is truncated away; earlier segments must
// be pristine.
func (s *Store) recover() error {
	segs, err := s.listSegments()
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		validLen, err := s.replaySegment(seg, last)
		if err != nil {
			return err
		}
		if last {
			s.activeSeg = seg
			s.activeSize = validLen
		}
	}
	if len(segs) == 0 {
		return s.rotateLocked()
	}
	// Reopen the final segment for appending, truncating a torn tail.
	f, err := os.OpenFile(s.segPath(s.activeSeg), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Truncate(s.activeSize); err != nil {
		f.Close()
		return fmt.Errorf("storage: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	s.active = f
	return nil
}

// replaySegment scans one segment, indexing its records. It returns the
// byte length of the valid prefix. tolerateTail permits a torn final
// record (returning the prefix before it); otherwise corruption errors.
func (s *Store) replaySegment(seg int, tolerateTail bool) (int64, error) {
	f, err := os.Open(s.segPath(seg))
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()

	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != segMagic {
		if tolerateTail && err != nil {
			return 0, fmt.Errorf("%w: segment %d: unreadable header", ErrCorrupt, seg)
		}
		return 0, fmt.Errorf("%w: segment %d: bad magic", ErrCorrupt, seg)
	}
	offset := int64(len(segMagic))
	var hdr [recordHeaderSize]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return offset, nil
		}
		if err != nil { // torn header
			if tolerateTail {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: segment %d: torn header at %d", ErrCorrupt, seg, offset)
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if tolerateTail {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: segment %d: torn payload at %d", ErrCorrupt, seg, offset)
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			if tolerateTail {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: segment %d: bad checksum at %d", ErrCorrupt, seg, offset)
		}
		b, err := bundle.Unmarshal(payload)
		if err != nil {
			if tolerateTail {
				return offset, nil
			}
			return 0, fmt.Errorf("%w: segment %d: undecodable record at %d: %v", ErrCorrupt, seg, offset, err)
		}
		s.indexRecord(b.ID(), recordPos{seg: seg, offset: offset, length: length})
		offset += recordHeaderSize + length
	}
}

// indexRecord records the newest position of id, tracking dead bytes of
// any superseded record.
func (s *Store) indexRecord(id bundle.ID, pos recordPos) {
	if old, ok := s.index[id]; ok {
		s.deadBytes += recordHeaderSize + old.length
		s.liveBytes -= recordHeaderSize + old.length
	}
	s.index[id] = pos
	s.liveBytes += recordHeaderSize + pos.length
}

// rotateLocked seals the active segment and opens the next one.
// Caller holds s.mu (or is in single-threaded Open).
func (s *Store) rotateLocked() error {
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
	}
	s.activeSeg++
	f, err := os.OpenFile(s.segPath(s.activeSeg), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	s.active = f
	s.activeSize = int64(len(segMagic))
	return nil
}

// Put appends b to the store. A bundle already present is superseded by
// the new record.
func (s *Store) Put(b *bundle.Bundle) error {
	payload := b.Marshal()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeSize >= s.opts.SegmentSize {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := s.active.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := s.active.Write(payload); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	s.indexRecord(b.ID(), recordPos{seg: s.activeSeg, offset: s.activeSize, length: int64(len(payload))})
	s.activeSize += recordHeaderSize + int64(len(payload))
	s.appends++
	if s.opts.SyncEvery > 0 && s.appends%s.opts.SyncEvery == 0 {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
	}
	return nil
}

// Get loads bundle id.
func (s *Store) Get(id bundle.ID) (*bundle.Bundle, error) {
	s.mu.Lock()
	pos, ok := s.index[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return s.readAt(pos)
}

func (s *Store) readAt(pos recordPos) (*bundle.Bundle, error) {
	// The active segment is written through s.active; reads open their
	// own handle so readers never disturb the append cursor.
	f, err := os.Open(s.segPath(pos.seg))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	buf := make([]byte, recordHeaderSize+pos.length)
	if _, err := f.ReadAt(buf, pos.offset); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	wantCRC := binary.LittleEndian.Uint32(buf[4:8])
	payload := buf[recordHeaderSize:]
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch for segment %d offset %d", ErrCorrupt, pos.seg, pos.offset)
	}
	b, err := bundle.Unmarshal(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return b, nil
}

// Has reports whether id is stored.
func (s *Store) Has(id bundle.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[id]
	return ok
}

// Count returns the number of live bundles.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// LiveBytes and DeadBytes report record accounting; their ratio drives
// Compact policy.
func (s *Store) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveBytes
}

// DeadBytes returns superseded record bytes awaiting compaction.
func (s *Store) DeadBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadBytes
}

// IDs returns every stored bundle ID, ascending.
func (s *Store) IDs() []bundle.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]bundle.ID, 0, len(s.index))
	for id := range s.index {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Scan calls fn for every live bundle in ascending ID order, stopping
// at the first error.
func (s *Store) Scan(fn func(*bundle.Bundle) error) error {
	for _, id := range s.IDs() {
		b, err := s.Get(id)
		if err != nil {
			return err
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// Compact rewrites live records into fresh segments and deletes old
// ones, reclaiming dead bytes. The store stays readable during the
// rewrite but Put is excluded for its duration.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()

	oldSegs, err := s.listSegments()
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	ids := make([]bundle.ID, 0, len(s.index))
	for id := range s.index {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Read everything first (positions reference old segments).
	bundles := make([]*bundle.Bundle, 0, len(ids))
	for _, id := range ids {
		b, err := s.readAt(s.index[id])
		if err != nil {
			return err
		}
		bundles = append(bundles, b)
	}

	// Start a fresh segment chain after the old ones.
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	s.index = make(map[bundle.ID]recordPos, len(ids))
	s.liveBytes, s.deadBytes = 0, 0
	if err := s.rotateLocked(); err != nil {
		return err
	}
	for _, b := range bundles {
		payload := b.Marshal()
		if s.activeSize >= s.opts.SegmentSize {
			if err := s.rotateLocked(); err != nil {
				return err
			}
		}
		var hdr [recordHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		if _, err := s.active.Write(hdr[:]); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		if _, err := s.active.Write(payload); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		s.indexRecord(b.ID(), recordPos{seg: s.activeSeg, offset: s.activeSize, length: int64(len(payload))})
		s.activeSize += recordHeaderSize + int64(len(payload))
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	for _, seg := range oldSegs {
		if err := os.Remove(s.segPath(seg)); err != nil {
			return fmt.Errorf("storage: remove old segment: %w", err)
		}
	}
	return nil
}

// Close syncs and closes the active segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	err := s.active.Close()
	s.active = nil
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}
