package storage

// Failure-path coverage via the fsx fault injector: every case the
// package doc contract names — torn final record (truncated on Open),
// ENOSPC mid-append (Put errors, store recoverable), fsync error on
// rotate (Put errors), corrupt sealed segment (Open errors) — plus the
// crash-during-rotation stillborn-segment case.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"provex/internal/bundle"
	"provex/internal/fsx"
	"provex/internal/score"
	"provex/internal/tweet"
)

// faultBundle builds a small distinguishable bundle.
func faultBundle(id bundle.ID, n int) *bundle.Bundle {
	b := bundle.New(id)
	base := time.Date(2009, 9, 29, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		m := tweet.Parse(tweet.ID(uint64(id)*1000+uint64(i)), fmt.Sprintf("user%d", i),
			base.Add(time.Duration(i)*time.Minute),
			fmt.Sprintf("bundle %d message %d #fault http://x.io/%d", id, i, i))
		b.Add(score.DefaultMessageWeights(), score.NewDoc(m))
	}
	return b
}

func openMem(t *testing.T, fs fsx.FS, opts Options) *Store {
	t.Helper()
	opts.FS = fs
	s, err := Open("store", opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

func TestTornFinalRecordTruncatedOnOpen(t *testing.T) {
	mem := fsx.NewMem()
	s := openMem(t, mem, Options{})
	for id := bundle.ID(1); id <= 3; id++ {
		if err := s.Put(faultBundle(id, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record mid-payload.
	name := "store/seg-000001.bls"
	data, err := mem.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	mem.WriteFile(name, data[:len(data)-5])

	s2 := openMem(t, mem, Options{})
	if s2.Count() != 2 {
		t.Fatalf("recovered %d bundles, want 2 (torn third truncated)", s2.Count())
	}
	if s2.Has(3) {
		t.Fatal("torn bundle 3 still indexed")
	}
	// The tail is truncated: appending works and survives reopen.
	if err := s2.Put(faultBundle(4, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openMem(t, mem, Options{})
	if !s3.Has(1) || !s3.Has(2) || !s3.Has(4) {
		t.Fatalf("post-truncate append lost: count=%d", s3.Count())
	}
}

func TestENOSPCMidAppend(t *testing.T) {
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	s := openMem(t, ff, Options{SyncEvery: 1})
	if err := s.Put(faultBundle(1, 3)); err != nil {
		t.Fatal(err)
	}
	// Fail the second write of the next Put (the payload write, after
	// the header already landed) with ENOSPC — a torn append.
	ff.Arm(2, fsx.Fault{Err: fsx.ErrNoSpace}, fsx.OpWrite)
	err := s.Put(faultBundle(2, 3))
	if !errors.Is(err, fsx.ErrNoSpace) {
		t.Fatalf("Put err = %v, want ENOSPC", err)
	}
	ff.Disarm()
	if s.Has(2) {
		t.Fatal("failed Put left bundle indexed")
	}

	// The store survives after reopen: bundle 1 intact, the torn append
	// truncated away per the recovery contract.
	s.Close()
	s2 := openMem(t, mem, Options{})
	if !s2.Has(1) || s2.Has(2) {
		t.Fatalf("recovery after ENOSPC: has1=%v has2=%v", s2.Has(1), s2.Has(2))
	}
	if err := s2.Put(faultBundle(2, 3)); err != nil {
		t.Fatalf("re-put after recovery: %v", err)
	}
	b, err := s2.Get(2)
	if err != nil || b.Size() != 3 {
		t.Fatalf("get after re-put: %v", err)
	}
}

// The retry path the engine's flush queue depends on: a failed Put
// must leave the open store appendable, with no dangling half-record.
func TestPutRetryAfterTornAppend(t *testing.T) {
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	s := openMem(t, ff, Options{SyncEvery: 1})
	if err := s.Put(faultBundle(1, 3)); err != nil {
		t.Fatal(err)
	}
	// Tear the payload write of the next Put: 4 bytes land, then error.
	ff.Arm(2, fsx.Fault{Err: fsx.ErrNoSpace, TornBytes: 4}, fsx.OpWrite)
	if err := s.Put(faultBundle(2, 3)); !errors.Is(err, fsx.ErrNoSpace) {
		t.Fatalf("torn Put err = %v", err)
	}
	ff.Disarm()

	// Retry on the SAME open store — the tail must have been repaired.
	if err := s.Put(faultBundle(2, 3)); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if err := s.Put(faultBundle(3, 2)); err != nil {
		t.Fatal(err)
	}
	for id := bundle.ID(1); id <= 3; id++ {
		if b, err := s.Get(id); err != nil || b.ID() != id {
			t.Fatalf("get %d after retry: %v", id, err)
		}
	}
	// And the repaired file is byte-consistent across reopen.
	s.Close()
	s2 := openMem(t, mem, Options{})
	if s2.Count() != 3 {
		t.Fatalf("reopened count = %d", s2.Count())
	}
}

func TestFsyncErrorOnRotate(t *testing.T) {
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	// Tiny segments force a rotation on the second Put; rotation syncs
	// the sealed segment first — fail that fsync.
	s := openMem(t, ff, Options{SegmentSize: 64})
	if err := s.Put(faultBundle(1, 3)); err != nil {
		t.Fatal(err)
	}
	ff.Arm(1, fsx.Fault{}, fsx.OpSync)
	if err := s.Put(faultBundle(2, 3)); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("Put during failing rotate = %v, want injected", err)
	}
	ff.Disarm()
	if s.Has(2) {
		t.Fatal("bundle 2 indexed despite failed rotation")
	}
	// Retry succeeds once the fault clears.
	if err := s.Put(faultBundle(2, 3)); err != nil {
		t.Fatalf("retry after rotate failure: %v", err)
	}
}

func TestCorruptSealedSegmentErrorsOnOpen(t *testing.T) {
	mem := fsx.NewMem()
	s := openMem(t, mem, Options{SegmentSize: 64}) // every Put rotates
	for id := bundle.ID(1); id <= 3; id++ {
		if err := s.Put(faultBundle(id, 4)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	names, _ := mem.ReadDir("store")
	if len(names) < 2 {
		t.Fatalf("want multiple segments, got %v", names)
	}

	// Flip a payload bit in the FIRST (sealed) segment.
	name := "store/seg-000001.bls"
	data, _ := mem.ReadFile(name)
	data[20] ^= 0x01
	mem.WriteFile(name, data)

	_, err := Open("store", Options{FS: mem})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestCrashAfterUnsyncedPutsLosesOnlyTail(t *testing.T) {
	mem := fsx.NewMem()
	s := openMem(t, mem, Options{SyncEvery: 2})
	for id := bundle.ID(1); id <= 5; id++ {
		if err := s.Put(faultBundle(id, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Puts 1-4 were covered by two fsyncs; put 5 is in the page cache
	// only. Crash without Close.
	mem.Crash()

	s2 := openMem(t, mem, Options{})
	if s2.Count() != 4 {
		t.Fatalf("recovered %d bundles after crash, want 4", s2.Count())
	}
	for id := bundle.ID(1); id <= 4; id++ {
		b, err := s2.Get(id)
		if err != nil {
			t.Fatalf("get %d: %v", id, err)
		}
		if b.ID() != id || b.Size() != 2 {
			t.Fatalf("bundle %d corrupt after crash", id)
		}
	}
}

func TestCrashDuringRotationDiscardsStillbornSegment(t *testing.T) {
	mem := fsx.NewMem()
	s := openMem(t, mem, Options{})
	if err := s.Put(faultBundle(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Fake the debris of a crash mid-rotation: a second segment whose
	// magic never fully landed.
	mem.WriteFile("store/seg-000002.bls", []byte("PRO"))

	s2 := openMem(t, mem, Options{})
	if !s2.Has(1) {
		t.Fatal("bundle 1 lost")
	}
	if err := s2.Put(faultBundle(2, 2)); err != nil {
		t.Fatalf("put after stillborn recovery: %v", err)
	}
}

func TestSyncFlushesActiveSegment(t *testing.T) {
	mem := fsx.NewMem()
	s := openMem(t, mem, Options{}) // SyncEvery 0: no implicit fsync
	if err := s.Put(faultBundle(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	s2 := openMem(t, mem, Options{})
	if !s2.Has(1) {
		t.Fatal("synced bundle lost by crash")
	}
}
