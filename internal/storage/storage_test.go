package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"provex/internal/bundle"
	"provex/internal/gen"
	"provex/internal/score"
	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

var msgWeights = score.DefaultMessageWeights()

// makeBundle builds a bundle with n generated messages under the given
// ID, deterministic in (id, n).
func makeBundle(id bundle.ID, n int) *bundle.Bundle {
	cfg := gen.DefaultConfig()
	cfg.Seed = int64(id)
	cfg.MsgsPerDay = 5000
	cfg.Users = 200
	cfg.VocabSize = 500
	cfg.EventsPerDay = 100
	g := gen.New(cfg)
	b := bundle.New(id)
	for i := 0; i < n; i++ {
		m := g.Next()
		b.Add(msgWeights, score.Doc{Msg: m, Keywords: tokenizer.Keywords(m.Text)})
	}
	return b
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	want := makeBundle(7, 12)
	if err := s.Put(want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(7)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.ID() != 7 || got.Size() != 12 {
		t.Errorf("got id=%d size=%d", got.ID(), got.Size())
	}
	if err := got.Validate(); err != nil {
		t.Errorf("loaded bundle invalid: %v", err)
	}
	if !s.Has(7) || s.Has(8) {
		t.Error("Has wrong")
	}
	if s.Count() != 1 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestGetMissing(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	if _, err := s.Get(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestReopenRecoversIndex(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	for id := bundle.ID(1); id <= 20; id++ {
		if err := s.Put(makeBundle(id, int(id)%7+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	if s2.Count() != 20 {
		t.Fatalf("recovered Count = %d, want 20", s2.Count())
	}
	for id := bundle.ID(1); id <= 20; id++ {
		b, err := s2.Get(id)
		if err != nil {
			t.Fatalf("Get(%d) after reopen: %v", id, err)
		}
		if b.Size() != int(id)%7+1 {
			t.Errorf("bundle %d size %d, want %d", id, b.Size(), int(id)%7+1)
		}
	}
	// And the store still accepts appends.
	if err := s2.Put(makeBundle(21, 3)); err != nil {
		t.Fatalf("Put after reopen: %v", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentSize: 4 << 10})
	for id := bundle.ID(1); id <= 60; id++ {
		if err := s.Put(makeBundle(id, 10)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := s.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	// All bundles remain readable across segments.
	for id := bundle.ID(1); id <= 60; id++ {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
	}
	// Reopen with many segments.
	s.Close()
	s2 := openStore(t, dir, Options{SegmentSize: 4 << 10})
	if s2.Count() != 60 {
		t.Fatalf("recovered Count = %d, want 60", s2.Count())
	}
}

func TestSupersedeAndCompact(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentSize: 16 << 10})
	for id := bundle.ID(1); id <= 10; id++ {
		if err := s.Put(makeBundle(id, 5)); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede half the bundles with bigger versions.
	for id := bundle.ID(1); id <= 5; id++ {
		if err := s.Put(makeBundle(id, 9)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != 10 {
		t.Fatalf("Count = %d, want 10", s.Count())
	}
	if s.DeadBytes() == 0 {
		t.Fatal("superseded records produced no dead bytes")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s.DeadBytes() != 0 {
		t.Errorf("DeadBytes after compact = %d", s.DeadBytes())
	}
	for id := bundle.ID(1); id <= 10; id++ {
		b, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%d) after compact: %v", id, err)
		}
		want := 5
		if id <= 5 {
			want = 9
		}
		if b.Size() != want {
			t.Errorf("bundle %d size %d, want %d (latest version)", id, b.Size(), want)
		}
	}
	// Store still writable after compact and survives reopen.
	if err := s.Put(makeBundle(11, 2)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir, Options{SegmentSize: 16 << 10})
	if s2.Count() != 11 {
		t.Fatalf("post-compact reopen Count = %d, want 11", s2.Count())
	}
}

func TestScan(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	for id := bundle.ID(3); id >= 1; id-- {
		if err := s.Put(makeBundle(id, 2)); err != nil {
			t.Fatal(err)
		}
	}
	var order []bundle.ID
	err := s.Scan(func(b *bundle.Bundle) error {
		order = append(order, b.ID())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Errorf("Scan order = %v, want ascending IDs", order)
	}
	sentinel := errors.New("stop")
	err = s.Scan(func(*bundle.Bundle) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("Scan error passthrough = %v", err)
	}
}

func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	for id := bundle.ID(1); id <= 5; id++ {
		if err := s.Put(makeBundle(id, 4)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: chop bytes off the segment tail.
	seg := filepath.Join(dir, "seg-000001.bls")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	if s2.Count() != 4 {
		t.Fatalf("recovered Count = %d, want 4 (last record torn)", s2.Count())
	}
	// The store accepts new appends after tail truncation.
	if err := s2.Put(makeBundle(50, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get(50); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptPayloadDetectedOnGet(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	if err := s.Put(makeBundle(1, 6)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(makeBundle(2, 6)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a byte inside the FIRST record's payload (not the tail).
	seg := filepath.Join(dir, "seg-000001.bls")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Open with a corrupt non-tail record in the last (only) segment:
	// the scan treats it as a torn tail and drops everything from the
	// corruption onwards.
	s2 := openStore(t, dir, Options{})
	if s2.Count() != 0 {
		t.Errorf("Count = %d, want 0 (corruption at first record)", s2.Count())
	}
}

func TestCorruptSealedSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentSize: 2 << 10})
	for id := bundle.ID(1); id <= 30; id++ {
		if err := s.Put(makeBundle(id, 6)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _ := s.listSegments()
	if len(segs) < 2 {
		t.Skip("need multiple segments")
	}
	// Corrupt the FIRST (sealed) segment.
	seg := filepath.Join(dir, "seg-000001.bls")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open over corrupt sealed segment = %v, want ErrCorrupt", err)
	}
}

func TestSyncEvery(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{SyncEvery: 2})
	for id := bundle.ID(1); id <= 5; id++ {
		if err := s.Put(makeBundle(id, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestEmptyStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	s.Close()
	s2 := openStore(t, dir, Options{})
	if s2.Count() != 0 {
		t.Errorf("empty reopen Count = %d", s2.Count())
	}
}

// Property: any sequence of Put operations (with ID reuse) leaves the
// store returning the latest version of every bundle, before and after
// reopen.
func TestPutSequenceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) > 30 {
			ops = ops[:30]
		}
		dir, err := os.MkdirTemp("", "provstore")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		s, err := Open(dir, Options{SegmentSize: 4 << 10})
		if err != nil {
			return false
		}
		latest := map[bundle.ID]int{}
		for i, op := range ops {
			id := bundle.ID(op%5) + 1
			size := i%6 + 1
			if err := s.Put(makeBundle(id, size)); err != nil {
				return false
			}
			latest[id] = size
		}
		check := func(st *Store) bool {
			if st.Count() != len(latest) {
				return false
			}
			for id, size := range latest {
				b, err := st.Get(id)
				if err != nil || b.Size() != size {
					return false
				}
			}
			return true
		}
		if !check(s) {
			return false
		}
		s.Close()
		s2, err := Open(dir, Options{SegmentSize: 4 << 10})
		if err != nil {
			return false
		}
		defer s2.Close()
		return check(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBundleContentSurvivesStore(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	b := bundle.New(77)
	at := time.Date(2009, 9, 30, 1, 2, 3, 0, time.UTC)
	m := tweet.Parse(5, "somebody", at, "exact text #tag http://bit.ly/z")
	b.Add(msgWeights, score.Doc{Msg: m, Keywords: tokenizer.Keywords(m.Text)})
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(77)
	if err != nil {
		t.Fatal(err)
	}
	gm := got.Nodes()[0].Doc.Msg
	if gm.Text != m.Text || gm.User != m.User || !gm.Date.Equal(at) {
		t.Errorf("content mangled: %+v", gm)
	}
}

func BenchmarkPut(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	bn := makeBundle(1, 20)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Unique IDs so the index grows like production.
		bn2 := makeBundle(bundle.ID(i+2), 1)
		_ = bn2
		if err := s.Put(bn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for id := bundle.ID(1); id <= 100; id++ {
		if err := s.Put(makeBundle(id, 10)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(bundle.ID(i%100) + 1); err != nil {
			b.Fatal(err)
		}
	}
}
