package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Counter = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("concurrent Counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("Gauge = %d, want 7", got)
	}
}

func TestStageTimer(t *testing.T) {
	var s StageTimer
	s.Observe(10 * time.Millisecond)
	s.Observe(30 * time.Millisecond)
	if got := s.Total(); got != 40*time.Millisecond {
		t.Errorf("Total = %v, want 40ms", got)
	}
	if got := s.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if got := s.Mean(); got != 20*time.Millisecond {
		t.Errorf("Mean = %v, want 20ms", got)
	}
	s.Time(func() { time.Sleep(time.Millisecond) })
	if s.Count() != 3 || s.Total() <= 40*time.Millisecond {
		t.Errorf("Time did not accumulate: count=%d total=%v", s.Count(), s.Total())
	}
}

func TestStageTimerEmptyMean(t *testing.T) {
	var s StageTimer
	if s.Mean() != 0 {
		t.Error("empty timer Mean should be 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []int64{0, 1, 2, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	buckets, total, mean, max := h.Snapshot()
	if total != 8 {
		t.Fatalf("total = %d, want 8", total)
	}
	wantCounts := []int64{2, 2, 2, 2} // <=1, <=10, <=100, overflow
	for i, b := range buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if max != 5000 {
		t.Errorf("max = %d, want 5000", max)
	}
	if mean <= 0 {
		t.Errorf("mean = %v, want > 0", mean)
	}
}

func TestPow2Histogram(t *testing.T) {
	h := NewPow2Histogram(4) // bounds 1,2,4,8
	buckets, _, _, _ := h.Snapshot()
	want := []int64{1, 2, 4, 8, -1}
	for i, b := range buckets {
		if b.UpperBound != want[i] {
			t.Errorf("bound %d = %d, want %d", i, b.UpperBound, want[i])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8, 16)
	for v := int64(1); v <= 16; v++ {
		h.Observe(v)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 = %d, want 1", q)
	}
	// target index 8 (0-based) of the sorted values 1..16 is 9, which
	// falls in the <=16 bucket.
	if q := h.Quantile(0.5); q != 16 {
		t.Errorf("q50 = %d, want 16", q)
	}
	if q := h.Quantile(1); q != 16 {
		t.Errorf("q100 = %d, want 16", q)
	}
	empty := NewHistogram(1)
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, bounds := range [][]int64{{}, {5, 5}, {10, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Observe(5)
	h.Observe(50)
	s := h.String()
	if !strings.Contains(s, "<=10") || !strings.Contains(s, "<=100") {
		t.Errorf("String output missing buckets: %q", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewPow2Histogram(10)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := int64(1); v <= 500; v++ {
				h.Observe(v)
			}
		}()
	}
	wg.Wait()
	_, total, _, _ := h.Snapshot()
	if total != 2000 {
		t.Errorf("concurrent total = %d, want 2000", total)
	}
}

func TestMemEstimator(t *testing.T) {
	var m MemEstimator
	m.Add(1 << 20)
	if m.MB() != 1 {
		t.Errorf("MB = %v, want 1", m.MB())
	}
	m.Sub(1 << 19)
	if m.Bytes() != 1<<19 {
		t.Errorf("Bytes = %d, want %d", m.Bytes(), 1<<19)
	}
}

func TestStringCosts(t *testing.T) {
	if got := StringCost("abcd"); got != StringOverhead+4 {
		t.Errorf("StringCost = %d", got)
	}
	ss := []string{"ab", "cdef"}
	want := int64(SliceOverhead) + 2*PtrSize + StringCost("ab") + StringCost("cdef")
	if got := StringsCost(ss); got != want {
		t.Errorf("StringsCost = %d, want %d", got, want)
	}
	if got := StringsCost(nil); got != SliceOverhead {
		t.Errorf("StringsCost(nil) = %d, want %d", got, SliceOverhead)
	}
}

// Property: histogram total always equals the number of observations
// and the sum of bucket counts.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []int64) bool {
		h := NewPow2Histogram(16)
		for _, v := range vals {
			h.Observe(v)
		}
		buckets, total, _, _ := h.Snapshot()
		var sum int64
		for _, b := range buckets {
			sum += b.Count
		}
		return total == int64(len(vals)) && sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewPow2Histogram(17)
		for _, v := range vals {
			h.Observe(int64(v))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
