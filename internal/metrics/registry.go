// Registry: named registration of the package's instruments and
// Prometheus text exposition rendering — the operational face of the
// metrics that were originally built for the paper's figures.
//
// Design constraints (see DESIGN.md §2e):
//
//   - Stdlib only. The text exposition format (version 0.0.4) is a
//     trivial line protocol; depending on a client library for it would
//     be the repository's first external dependency.
//   - Zero overhead on the hot path. Registration hands the caller (or
//     accepts from the caller) a plain *Counter/*Gauge/*StageTimer/
//     *Histogram; the registry is consulted only at registration and
//     render time, so Counter.Inc in the ingest loop stays a single
//     atomic add with no map lookup and no allocation.
//   - Deterministic output. Families render in lexicographic name
//     order, series within a family in label order, histogram buckets
//     ascending and cumulative — so scrapes diff cleanly and the golden
//     test can assert the exact byte stream.
//
// Instruments owned by state that is not atomically readable (the pool
// map, the flush retry queue) are exported through collectors: callbacks
// run once per render, under the registry lock, that snapshot that state
// through whatever lock its owner requires and publish it via
// closure-captured values read by Register*Func series.

package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// metricKind is the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindSummary   metricKind = "summary"
	kindHistogram metricKind = "histogram"
)

// series is one labelled instance inside a family. Exactly one of the
// instrument fields is set, matching the family kind.
type series struct {
	labels string // canonical rendered label set: `{a="b",c="d"}` or ""

	c     *Counter
	g     *Gauge
	fn    func() float64 // counter/gauge func variant
	t     *StageTimer
	h     *Histogram
	scale float64 // histogram value divisor at render (1e9: ns → s)
}

// family groups every series sharing one metric name, HELP and TYPE.
type family struct {
	name string
	help string
	kind metricKind

	keys   []string // registration order; sorted at render
	series map[string]*series
}

// Registry maps metric names to instruments and renders them in the
// Prometheus text exposition format. Registration methods panic on
// misuse (invalid names, duplicate series, kind conflicts) — these are
// programmer errors, caught by the first scrape in any test.
//
// A Registry is safe for concurrent use; rendering and registration
// serialize on an internal lock, while instrument updates never touch
// the registry at all.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family // guarded by mu
	collectors []func()           // guarded by mu
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// AddCollector registers fn to run at the start of every render, before
// any series value is read. Use it to snapshot state that cannot be
// read atomically (e.g. engine stats guarded by the pipeline lock) into
// values that registered *Func series then report.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// RegisterCounter exposes c as a counter series. labels are key/value
// pairs baked into the series at registration.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...string) {
	r.register(name, help, kindCounter, &series{c: c}, labels)
}

// RegisterCounterFunc exposes fn as a counter series. fn runs at render
// time (after collectors) and must be safe to call then — either
// reading collector-published values or taking its own locks.
func (r *Registry) RegisterCounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindCounter, &series{fn: fn}, labels)
}

// RegisterGauge exposes g as a gauge series.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...string) {
	r.register(name, help, kindGauge, &series{g: g}, labels)
}

// RegisterGaugeFunc exposes fn as a gauge series, with the same
// render-time contract as RegisterCounterFunc.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindGauge, &series{fn: fn}, labels)
}

// RegisterTimer exposes t as a summary: <name>_sum is the accumulated
// stage time in seconds, <name>_count the number of observations. Name
// the family with a _seconds suffix by convention.
func (r *Registry) RegisterTimer(name, help string, t *StageTimer, labels ...string) {
	r.register(name, help, kindSummary, &series{t: t}, labels)
}

// RegisterHistogram exposes h as a cumulative-bucket histogram. scale
// divides the stored int64 observations into the exposed unit — 1e9
// turns nanosecond observations into seconds; use 1 for dimensionless
// histograms. scale must be positive.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, scale float64, labels ...string) {
	if scale <= 0 {
		panic("metrics: RegisterHistogram scale must be positive")
	}
	r.register(name, help, kindHistogram, &series{h: h, scale: scale}, labels)
}

// Counter creates and registers a counter in one step.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c, labels...)
	return c
}

// Gauge creates and registers a gauge in one step.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, g, labels...)
	return g
}

// DurationHistogram creates a histogram whose observations are
// time.Duration nanoseconds (pass int64(d) to Observe) and registers it
// with second-scaled buckets.
func (r *Registry) DurationHistogram(name, help string, bounds []time.Duration, labels ...string) *Histogram {
	ib := make([]int64, len(bounds))
	for i, b := range bounds {
		ib[i] = int64(b)
	}
	h := NewHistogram(ib...)
	r.RegisterHistogram(name, help, h, 1e9, labels...)
	return h
}

func (r *Registry) register(name, help string, kind metricKind, s *series, labels []string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	s.labels = canonicalLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind, kind))
	}
	if _, dup := f.series[s.labels]; dup {
		panic(fmt.Sprintf("metrics: duplicate series %s%s", name, s.labels))
	}
	f.series[s.labels] = s
	f.keys = append(f.keys, s.labels)
}

// validMetricName checks the Prometheus metric name charset.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// canonicalLabels renders key/value pairs as a deterministic label set.
func canonicalLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("metrics: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validMetricName(labels[i]) || strings.ContainsRune(labels[i], ':') {
			panic(fmt.Sprintf("metrics: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, escapeLabelValue(p.v))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition format's escapes; %q adds the
// surrounding quotes and backslash/quote escapes, so only newlines need
// pre-treatment.
func escapeLabelValue(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Expose renders every registered family in the Prometheus text
// exposition format (version 0.0.4): collectors run first, then
// families in name order, series in label order, histogram buckets
// cumulative and ascending with a closing +Inf bucket.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.collectors {
		fn()
	}
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(f.help), name, f.kind)
		keys := append([]string(nil), f.keys...)
		sort.Strings(keys)
		for _, key := range keys {
			renderSeries(&b, f, f.series[key])
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func renderSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.c != nil:
		fmt.Fprintf(b, "%s%s %d\n", f.name, s.labels, s.c.Value())
	case s.g != nil:
		fmt.Fprintf(b, "%s%s %d\n", f.name, s.labels, s.g.Value())
	case s.fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
	case s.t != nil:
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.t.Total().Seconds()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, s.labels, s.t.Count())
	case s.h != nil:
		renderHistogram(b, f.name, s)
	}
}

// renderHistogram writes the cumulative _bucket/_sum/_count triplet.
// The instrument's inclusive int64 upper bounds match Prometheus's
// le (less-or-equal) semantics directly; the overflow bucket becomes
// le="+Inf".
func renderHistogram(b *strings.Builder, name string, s *series) {
	buckets, total, mean, _ := s.h.Snapshot()
	var cum int64
	for _, bk := range buckets {
		cum += bk.Count
		le := "+Inf"
		if bk.UpperBound >= 0 {
			le = formatFloat(float64(bk.UpperBound) / s.scale)
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", le), cum)
	}
	sum := mean * float64(total) / s.scale
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatFloat(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, total)
}

// withLabel splices one more label pair into an already-rendered label
// set. The le label sorts into place lexicographically often enough not
// to matter: the exposition format does not require sorted label names,
// only consistent ones, and ours are consistent per series.
func withLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, escapeLabelValue(v))
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatFloat renders v in the shortest exact form the exposition
// format accepts.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
