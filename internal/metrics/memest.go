package metrics

// MemEstimator tracks an analytic estimate of bytes held by the
// in-memory provenance structures. Components register additions and
// removals as they mutate; the estimate is the running sum.
//
// The model intentionally charges Go object overheads (slice and map
// headers, pointer slots) with fixed constants so the Full Index /
// Partial Index / Bundle Limit comparison of Figure 11(a) reflects the
// same relative costs as the paper's process-level measurement, without
// depending on GC state.
type MemEstimator struct {
	bytes Gauge
}

// Per-object cost constants for the 64-bit memory model.
const (
	PtrSize        = 8
	StringOverhead = 16 // string header
	SliceOverhead  = 24 // slice header
	MapEntryCost   = 48 // amortised bucket share per map entry
	MessageBase    = 96 // Message struct fields minus variable parts
	NodeBase       = 32 // bundle tree node: parent index, score, pointer
	BundleBase     = 160
	PostingCost    = 24 // bundle ID + count + list slot
	NodeRefCost    = 8  // node-index reference: int32 slot + growth slack
)

// StringCost returns the estimated heap bytes of string s.
func StringCost(s string) int64 { return StringOverhead + int64(len(s)) }

// StringsCost returns the estimated heap bytes of a []string with its
// backing array and content.
func StringsCost(ss []string) int64 {
	total := int64(SliceOverhead)
	for _, s := range ss {
		total += PtrSize + StringCost(s)
	}
	return total
}

// Add charges n bytes.
//
//provex:hotpath memory accounting on every pool insert
func (m *MemEstimator) Add(n int64) { m.bytes.Add(n) }

// Sub releases n bytes.
//
//provex:hotpath memory accounting on every eviction/flush
func (m *MemEstimator) Sub(n int64) { m.bytes.Add(-n) }

// Bytes returns the current estimate.
func (m *MemEstimator) Bytes() int64 { return m.bytes.Value() }

// MB returns the estimate in mebibytes.
func (m *MemEstimator) MB() float64 { return float64(m.bytes.Value()) / (1 << 20) }
