// Package metrics instruments the provenance engine: counters, stage
// timers (the paper's Figure 13 splits ingest cost into bundle match,
// message placement and memory refinement), histograms for the bundle
// characteristics study (Figure 6), and a deterministic memory
// estimator used for the Figure 11 memory-cost curves.
//
// The estimator exists because Go's runtime heap statistics measure the
// whole process, and the paper's comparison needs the footprint of the
// provenance structures alone, independent of GC timing and test
// harness overhead ("to measure this memory metric independently of
// hardware configuration").
package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for
// concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//provex:hotpath per-message increment on the untraced ingest path
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative.
//
//provex:hotpath per-message increment on the untraced ingest path
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that may go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
//
//provex:hotpath queue-depth style updates inside the ingest loop
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
//
//provex:hotpath in-flight tracking on every HTTP request
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// StageTimer accumulates wall time spent in one pipeline stage.
// Figure 13 plots its cumulative value per stage over the stream.
type StageTimer struct {
	total atomic.Int64 // nanoseconds
	count atomic.Int64
}

// Time runs fn and charges its duration to the stage.
func (s *StageTimer) Time(fn func()) {
	start := time.Now()
	fn()
	s.Observe(time.Since(start))
}

// Observe charges d to the stage.
//
//provex:hotpath per-stage timing around every ingested message
func (s *StageTimer) Observe(d time.Duration) {
	s.total.Add(int64(d))
	s.count.Add(1)
}

// Total returns accumulated stage time.
func (s *StageTimer) Total() time.Duration { return time.Duration(s.total.Load()) }

// Count returns how many observations were charged.
func (s *StageTimer) Count() int64 { return s.count.Load() }

// Mean returns the average observation, zero when empty.
func (s *StageTimer) Mean() time.Duration {
	n := s.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(s.total.Load() / n)
}

// Histogram counts observations into caller-defined bucket upper bounds
// (inclusive), plus an overflow bucket. It is safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64 // sorted ascending; immutable after NewHistogram
	counts []int64 // len(bounds)+1, last = overflow; guarded by mu
	total  int64   // guarded by mu
	sum    int64   // guarded by mu
	max    int64   // guarded by mu
}

// NewHistogram builds a histogram over the given inclusive upper
// bounds, which must be sorted ascending and non-empty.
func NewHistogram(bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// NewPow2Histogram builds power-of-two bounds 1,2,4,...,2^(n-1) —
// the natural scale for the paper's bundle-size distribution plot.
func NewPow2Histogram(n int) *Histogram {
	bounds := make([]int64, n)
	for i := range bounds {
		bounds[i] = 1 << uint(i)
	}
	return NewHistogram(bounds...)
}

// Observe records v.
//
//provex:hotpath WAL fsync latency and HTTP request duration feed here
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Open-coded binary search: the sort.Search form costs a closure
	// header per call, which hotpathalloc (and the zero-alloc budget)
	// refuse on this path.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Bucket describes one histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is inclusive; the overflow bucket reports
	// UpperBound == -1.
	UpperBound int64
	Count      int64
}

// Snapshot returns the buckets, total observation count, mean and max.
func (h *Histogram) Snapshot() (buckets []Bucket, total int64, mean float64, max int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets = make([]Bucket, 0, len(h.counts))
	for i, c := range h.counts {
		ub := int64(-1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		buckets = append(buckets, Bucket{UpperBound: ub, Count: c})
	}
	if h.total > 0 {
		mean = float64(h.sum) / float64(h.total)
	}
	return buckets, h.total, mean, h.max
}

// Quantile returns an upper-bound estimate of quantile q in [0,1],
// resolved at bucket granularity. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	target := int64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// String renders an ASCII sketch, useful in example output and -v tests.
func (h *Histogram) String() string {
	buckets, total, mean, max := h.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "histogram n=%d mean=%.1f max=%d\n", total, mean, max)
	var peak int64 = 1
	for _, bk := range buckets {
		if bk.Count > peak {
			peak = bk.Count
		}
	}
	for _, bk := range buckets {
		if bk.Count == 0 {
			continue
		}
		label := "overflow"
		if bk.UpperBound >= 0 {
			label = fmt.Sprintf("<=%d", bk.UpperBound)
		}
		bar := strings.Repeat("#", int(1+bk.Count*40/peak))
		fmt.Fprintf(&b, "  %-10s %8d %s\n", label, bk.Count, bar)
	}
	return b.String()
}
