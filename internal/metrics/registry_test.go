package metrics

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildTestRegistry wires one instrument of every kind with fixed
// observations, so the exposition output is fully deterministic.
func buildTestRegistry() *Registry {
	r := NewRegistry()

	c := r.Counter("test_requests_total", "Requests served.", "path", "/search", "code", "2xx")
	c.Add(42)
	r.Counter("test_requests_total", "Requests served.", "path", "/search", "code", "5xx").Inc()

	g := r.Gauge("test_in_flight", "In-flight requests.")
	g.Set(3)

	r.RegisterGaugeFunc("test_pool_bundles_live", "Live bundles.", func() float64 { return 10000 })
	r.RegisterCounterFunc("test_evictions_total", "Evictions.", func() float64 { return 7 }, "reason", "ranked")

	var t StageTimer
	t.Observe(1500 * time.Millisecond)
	t.Observe(500 * time.Millisecond)
	r.RegisterTimer("test_stage_seconds", "Stage time.", &t, "stage", "match")

	h := r.DurationHistogram("test_latency_seconds", "Request latency.",
		[]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	h.Observe(int64(500 * time.Microsecond))
	h.Observe(int64(5 * time.Millisecond))
	h.Observe(int64(5 * time.Millisecond))
	h.Observe(int64(2 * time.Second)) // overflow
	return r
}

const goldenExposition = `# HELP test_evictions_total Evictions.
# TYPE test_evictions_total counter
test_evictions_total{reason="ranked"} 7
# HELP test_in_flight In-flight requests.
# TYPE test_in_flight gauge
test_in_flight 3
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.001"} 1
test_latency_seconds_bucket{le="0.01"} 3
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 2.0105
test_latency_seconds_count 4
# HELP test_pool_bundles_live Live bundles.
# TYPE test_pool_bundles_live gauge
test_pool_bundles_live 10000
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{code="2xx",path="/search"} 42
test_requests_total{code="5xx",path="/search"} 1
# HELP test_stage_seconds Stage time.
# TYPE test_stage_seconds summary
test_stage_seconds_sum{stage="match"} 2
test_stage_seconds_count{stage="match"} 2
`

// TestExpositionGolden locks the exact output format: families in name
// order, series in label order, histogram buckets cumulative with a
// closing +Inf, summaries as _sum/_count in seconds.
func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().Expose(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenExposition {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), goldenExposition)
	}
}

// TestExpositionStable renders twice and requires identical bytes —
// ordering must not depend on map iteration.
func TestExpositionStable(t *testing.T) {
	r := buildTestRegistry()
	var a, b strings.Builder
	if err := r.Expose(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of the same registry differ")
	}
}

// TestExpositionParses walks every line and checks it is either a
// well-formed comment or a "name{labels} value" sample with a parseable
// float value, and that histogram buckets are monotonically
// non-decreasing in le order with count equal to the +Inf bucket.
func TestExpositionParses(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().Expose(&b); err != nil {
		t.Fatal(err)
	}
	var lastBucket int64 = -1
	var infBucket, histCount int64
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("malformed comment line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("no value separator in %q", line)
		}
		name, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name = name[:i]
		}
		if !validMetricName(name) {
			t.Fatalf("invalid sample name in %q", line)
		}
		if strings.HasPrefix(line, "test_latency_seconds_bucket") {
			n, _ := strconv.ParseInt(value, 10, 64)
			if n < lastBucket {
				t.Fatalf("bucket counts not monotonic at %q", line)
			}
			lastBucket = n
			if strings.Contains(line, `le="+Inf"`) {
				infBucket = n
			}
		}
		if strings.HasPrefix(line, "test_latency_seconds_count") {
			histCount, _ = strconv.ParseInt(value, 10, 64)
		}
	}
	if infBucket != histCount {
		t.Errorf("+Inf bucket %d != histogram count %d", infBucket, histCount)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	cases := map[string]func(r *Registry){
		"bad name":      func(r *Registry) { r.Counter("9bad", "h") },
		"bad label":     func(r *Registry) { r.Counter("ok_total", "h", "9bad", "v") },
		"odd labels":    func(r *Registry) { r.Counter("ok_total", "h", "k") },
		"dup series":    func(r *Registry) { r.Counter("a_total", "h"); r.Counter("a_total", "h") },
		"kind conflict": func(r *Registry) { r.Counter("a_total", "h"); r.Gauge("a_total", "h") },
		"zero scale":    func(r *Registry) { r.RegisterHistogram("h", "h", NewHistogram(1), 0) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

// TestCollectorRunsPerRender proves collectors execute before series
// values are read, once per Expose.
func TestCollectorRunsPerRender(t *testing.T) {
	r := NewRegistry()
	runs := 0
	var snapshot float64
	r.AddCollector(func() { runs++; snapshot = float64(runs * 100) })
	r.RegisterGaugeFunc("collected_value", "From collector.", func() float64 { return snapshot })
	for want := 1; want <= 2; want++ {
		var b strings.Builder
		if err := r.Expose(&b); err != nil {
			t.Fatal(err)
		}
		if runs != want {
			t.Fatalf("collector ran %d times, want %d", runs, want)
		}
		if !strings.Contains(b.String(), "collected_value "+strconv.Itoa(want*100)) {
			t.Errorf("render %d did not see collector value: %s", want, b.String())
		}
	}
}

// TestHotPathZeroAlloc is the acceptance gate: registered counters and
// gauges must add zero allocations per operation — registration hands
// back the bare instrument, so the hot path never touches the registry.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "h")
	g := r.Gauge("hot_gauge", "h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(7)
		g.Add(-1)
	}); n != 0 {
		t.Errorf("hot path allocates %.1f per op, want 0", n)
	}
}

func BenchmarkRegisteredCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkRegisteredGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkExpose(b *testing.B) {
	r := buildTestRegistry()
	var sb strings.Builder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := r.Expose(&sb); err != nil {
			b.Fatal(err)
		}
	}
}
