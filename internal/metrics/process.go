// Process-level metadata metrics: a constant build-info gauge whose
// labels identify what is running, and the process start time so
// scrapes can compute uptime and correlate deploys with trace output.
package metrics

import (
	"runtime"
	"runtime/debug"
	"time"
)

// RegisterProcess exposes provex_build_info (value 1, version and
// go-version labels — the Prometheus build-info idiom) and
// provex_process_start_time_seconds on reg. Call once per registry;
// registering the same family twice panics like any duplicate series.
func RegisterProcess(reg *Registry) {
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				version = s.Value[:12]
			}
		}
	}
	reg.RegisterGaugeFunc("provex_build_info",
		"Constant 1; the labels identify the running build.",
		func() float64 { return 1 },
		"version", version, "go_version", runtime.Version())
	start := float64(time.Now().UnixNano()) / 1e9
	reg.RegisterGaugeFunc("provex_process_start_time_seconds",
		"Unix time the process started, for uptime computation.",
		func() float64 { return start })
}
