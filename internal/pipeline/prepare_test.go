package pipeline

import (
	"errors"
	"io"
	"reflect"
	"sync"
	"testing"

	"provex/internal/core"
	"provex/internal/stream"
	"provex/internal/tweet"
)

// comparable strips the stage timers (wall-clock, legitimately
// different across runs) from a Stats for equality checks.
func comparable(s core.Stats) core.Stats {
	s.PrepareTime, s.MatchTime, s.PlaceTime, s.RefineTime = 0, 0, 0, 0
	return s
}

// TestParallelIngestDeterminism is the core guarantee of the parallel
// pipeline: with prepare fanned out over 4 workers and Eq. 1 match
// scoring split across 2, every InsertResult — bundle assignment,
// creation flag, connection type — must be identical to the serial
// engine on the same 10k-message stream.
func TestParallelIngestDeterminism(t *testing.T) {
	// Two identically-seeded generators, one per engine: engines retain
	// and annotate messages, so the streams must not share pointers.
	const n = 10000
	gSerial, gPar := smallGen(11), smallGen(11)
	msgs := make([]*tweet.Message, n)
	for i := range msgs {
		msgs[i] = gPar.Next()
	}

	serial := core.New(core.PartialIndexConfig(500), nil, nil)
	serialRes := make([]core.InsertResult, 0, n)
	for i := 0; i < n; i++ {
		serialRes = append(serialRes, serial.Insert(gSerial.Next()))
	}

	cfg := core.PartialIndexConfig(500)
	cfg.Parallel = core.ParallelOptions{Workers: 4, MatchWorkers: 2, MatchThreshold: 8}
	par := core.New(cfg, nil, nil)
	src := NewPreparedSource(stream.NewSliceSource(msgs), cfg.Parallel.Workers, 0)
	parRes := make([]core.InsertResult, 0, n)
	for {
		p, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		parRes = append(parRes, par.InsertPrepared(p))
	}

	if len(parRes) != n {
		t.Fatalf("parallel ingested %d messages, want %d", len(parRes), n)
	}
	for i := range serialRes {
		if serialRes[i] != parRes[i] {
			t.Fatalf("InsertResult diverges at message %d:\nserial:   %+v\nparallel: %+v",
				i, serialRes[i], parRes[i])
		}
	}
	got := comparable(par.Snapshot())
	want := comparable(serial.Snapshot())
	if !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot diverges:\nserial:   %+v\nparallel: %+v", want, got)
	}
}

// TestIngestAll covers both paths of the convenience wrapper: the
// serial fallback and the worker-pool path must ingest every message.
func TestIngestAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g := smallGen(12)
		msgs := make([]*tweet.Message, 2000)
		for i := range msgs {
			msgs[i] = g.Next()
		}
		cfg := core.PartialIndexConfig(300)
		cfg.Parallel.Workers = workers
		e := core.New(cfg, nil, nil)
		n, err := IngestAll(e, stream.NewSliceSource(msgs))
		if err != nil || n != len(msgs) {
			t.Fatalf("workers=%d: IngestAll = (%d, %v), want (%d, nil)", workers, n, err, len(msgs))
		}
		if got := e.Snapshot().Messages; got != int64(len(msgs)) {
			t.Errorf("workers=%d: engine saw %d messages", workers, got)
		}
	}
}

// TestPreparedSourceSurfacesError: a non-EOF source error must come out
// of Next after the messages dispatched before it.
func TestPreparedSourceSurfacesError(t *testing.T) {
	boom := errors.New("boom")
	g := smallGen(13)
	sent := 0
	src := stream.FuncSource(func() *tweet.Message { return g.Next() })
	wrapped := failAfter{src: src, n: 100, err: boom, sent: &sent}
	ps := NewPreparedSource(&wrapped, 3, 0)
	got := 0
	for {
		_, err := ps.Next()
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want boom", err)
			}
			break
		}
		got++
	}
	if got != 100 {
		t.Errorf("yielded %d messages before error, want 100", got)
	}
}

type failAfter struct {
	src  stream.Source
	n    int
	err  error
	sent *int
}

func (f *failAfter) Next() (*tweet.Message, error) {
	if *f.sent >= f.n {
		return nil, f.err
	}
	*f.sent++
	return f.src.Next()
}

// TestServiceParallelMatchesSerial: the Service's parallel writer path
// must end in the same engine state as the serial one.
func TestServiceParallelMatchesSerial(t *testing.T) {
	run := func(workers int) core.Stats {
		s := newService(Options{Workers: workers})
		s.Start()
		g := smallGen(14)
		for i := 0; i < 5000; i++ {
			if err := s.Submit(g.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Stop(); err != nil {
			t.Fatal(err)
		}
		return comparable(s.Snapshot())
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("service state diverges:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestConcurrentQueriesDuringParallelIngest is the -race companion of
// TestConcurrentQueriesDuringIngest for the worker-pool writer path.
func TestConcurrentQueriesDuringParallelIngest(t *testing.T) {
	s := newService(Options{Buffer: 64, Workers: 4})
	s.Start()
	g := smallGen(15)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.SearchBundles("game win", 5)
				s.SearchMessages("game", 5)
				s.Snapshot()
				s.Ingested()
			}
		}()
	}
	for i := 0; i < 3000; i++ {
		if err := s.Submit(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if s.Ingested() != 3000 {
		t.Errorf("Ingested = %d", s.Ingested())
	}
}
