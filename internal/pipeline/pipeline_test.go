package pipeline

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/query"
	"provex/internal/tweet"
)

func smallGen(seed int64) *gen.Generator {
	cfg := gen.DefaultConfig()
	cfg.Seed = seed
	cfg.MsgsPerDay = 20000
	cfg.Users = 800
	cfg.VocabSize = 900
	cfg.EventsPerDay = 400
	return gen.New(cfg)
}

func newService(opts Options) *Service {
	proc := query.New(core.New(core.PartialIndexConfig(500), nil, nil), query.DefaultOptions())
	return New(proc, opts)
}

func TestIngestAndQuery(t *testing.T) {
	s := newService(Options{})
	s.Start()
	g := smallGen(1)
	const n = 4000
	for i := 0; i < n; i++ {
		if err := s.Submit(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if s.Ingested() != n {
		t.Errorf("Ingested = %d, want %d", s.Ingested(), n)
	}
	st := s.Snapshot()
	if st.Messages != n || st.BundlesCreated == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	s := newService(Options{})
	s.Start()
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	err := s.Submit(&tweet.Message{ID: 1, User: "u", Text: "x", Date: time.Now()})
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Stop = %v, want ErrClosed", err)
	}
	// Stop is idempotent.
	if err := s.Stop(); err != nil {
		t.Errorf("second Stop = %v", err)
	}
}

// TestConcurrentQueriesDuringIngest hammers the read path while the
// writer ingests; run with -race this verifies the locking discipline.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	s := newService(Options{Buffer: 64})
	s.Start()
	g := smallGen(2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.SearchBundles("game win", 5)
				s.SearchMessages("game", 5)
				s.Snapshot()
				s.Ingested()
			}
		}()
	}
	for i := 0; i < 3000; i++ {
		if err := s.Submit(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if s.Ingested() != 3000 {
		t.Errorf("Ingested = %d", s.Ingested())
	}
}

func TestPeriodicCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "engine.ckpt")
	s := newService(Options{CheckpointEvery: 500, CheckpointPath: ckpt})
	s.Start()
	g := smallGen(3)
	const n = 2200
	for i := 0; i < n; i++ {
		if err := s.Submit(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	// 4 periodic (500,1000,1500,2000) + 1 final on drain.
	if got := s.Checkpoints(); got != 5 {
		t.Errorf("Checkpoints = %d, want 5", got)
	}

	// The final checkpoint restores to the full ingested state.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := core.RestoreCheckpoint(core.PartialIndexConfig(500), nil, nil, f)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := restored.Snapshot().Messages; got != n {
		t.Errorf("restored messages = %d, want %d", got, n)
	}
	// No stray temp file.
	if _, err := os.Stat(ckpt + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp checkpoint left behind: %v", err)
	}
}

func TestCheckpointFailureSurfaced(t *testing.T) {
	s := newService(Options{CheckpointEvery: 10, CheckpointPath: "/nonexistent-dir/x.ckpt"})
	s.Start()
	g := smallGen(4)
	for i := 0; i < 50; i++ {
		if err := s.Submit(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	// The failure must latch and surface through Err() while the
	// service is still running, not only at Stop.
	deadline := time.Now().Add(5 * time.Second)
	for s.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint failure not surfaced by Err before Stop")
		}
		time.Sleep(time.Millisecond)
	}
	err := s.Stop()
	if err == nil {
		t.Fatal("checkpoint failure not surfaced by Stop")
	}
	if !errors.Is(err, s.Err()) && err.Error() != s.Err().Error() {
		t.Errorf("Stop error %v differs from latched Err %v", err, s.Err())
	}
}

func TestTrailThroughService(t *testing.T) {
	s := newService(Options{})
	s.Start()
	base := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)
	s.Submit(tweet.Parse(1, "a", base, "breaking story #news"))
	s.Submit(tweet.Parse(2, "b", base.Add(time.Minute), "RT @a: breaking story #news"))
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	hits := s.SearchBundles("breaking story", 1)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	trail, err := s.Trail(hits[0].ID)
	if err != nil || trail == "" {
		t.Fatalf("Trail = (%q, %v)", trail, err)
	}
}

func TestBackpressureBoundsQueue(t *testing.T) {
	// A tiny buffer with a slow consumer must not lose messages.
	s := newService(Options{Buffer: 2})
	s.Start()
	g := smallGen(5)
	for i := 0; i < 500; i++ {
		if err := s.Submit(g.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if s.Ingested() != 500 {
		t.Errorf("Ingested = %d, want 500", s.Ingested())
	}
}
