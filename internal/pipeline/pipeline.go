// Package pipeline wraps the single-threaded provenance engine in a
// concurrent service: one writer goroutine owns ingest (the paper's
// pipeline is inherently sequential — messages must enter in date
// order), while any number of query goroutines read under a shared
// lock. This is the "real time" deployment shell around the core: the
// demo server and live feeds talk to a Service, not to the Engine.
//
// The Service also supports periodic durable checkpoints (the paper's
// stability requirement): every CheckpointEvery messages the engine
// state is written to CheckpointPath via an atomic temp-file rename, so
// a crashed process can resume from the last checkpoint without
// re-ingesting the stream.
//
// Concurrency contract: Submit is safe from any goroutine (it only
// feeds the queue); Start and Stop must not race each other; all query
// methods take the service's read lock and may run concurrently with
// ingest. RegisterMetrics may be called before Start; the series it
// registers are scrape-safe at any time — counters are atomics, and
// lock-guarded values are read through funcs that take the read lock
// per render.
package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/metrics"
	"provex/internal/query"
	"provex/internal/trending"
	"provex/internal/tweet"
)

// ErrClosed is returned by Submit after Stop.
var ErrClosed = errors.New("pipeline: service closed")

// Options configure a Service.
type Options struct {
	// Buffer is the ingest queue capacity; Submit blocks when full
	// (backpressure), so producers can never outrun memory. 0 uses 1024.
	Buffer int
	// CheckpointEvery writes a checkpoint after every n ingested
	// messages; 0 disables checkpointing.
	CheckpointEvery int
	// CheckpointPath is the checkpoint file; required when
	// CheckpointEvery > 0.
	CheckpointPath string
	// Workers sets the number of concurrent prepare goroutines (keyword
	// extraction) feeding the single apply writer. 0 defers to the
	// engine's Parallel.Workers configuration; values <= 1 keep the
	// fully serial writer. Bundle assignment is identical either way —
	// the apply stage consumes prepared messages in submission order.
	Workers int
	// Durable, when set, switches the service to crash-safe ingest:
	// every message is WAL-appended before it is applied, and
	// checkpoints (on the CheckpointEvery cadence and at Stop) go
	// through Durable.Checkpoint — drain parked flushes, sync the
	// store, atomic checkpoint, truncate the WAL. The Durable must wrap
	// the same engine the service's processor does; CheckpointPath is
	// ignored (Durable carries its own).
	Durable *Durable
}

// Service is a concurrent facade over a query.Processor. Create with
// New, feed with Submit, query with the Search/Trail methods, and shut
// down with Stop.
type Service struct {
	opts Options
	proc *query.Processor

	mu sync.RWMutex // guards proc/engine state

	in     chan *tweet.Message
	done   chan struct{}
	stopMu sync.Mutex
	closed bool // guarded by stopMu

	ingested  int   // guarded by mu
	ckptErr   error // guarded by mu
	ckptCount int   // guarded by mu
	walErr    error // guarded by mu

	// ckptTimer accumulates checkpoint wall time (drain + store sync +
	// atomic write + WAL truncate). Atomic, so scrapes read it live.
	ckptTimer metrics.StageTimer
}

// RegisterMetrics exposes the service's instruments on reg under
// canonical provex_pipeline_* names (documented in OBSERVABILITY.md).
// The *Func series take the service's read lock at render time, so a
// scrape briefly queues behind the writer like any query does.
func (s *Service) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCounterFunc("provex_pipeline_ingested_total",
		"Messages applied by the ingest writer.",
		func() float64 { return float64(s.Ingested()) })
	reg.RegisterCounterFunc("provex_pipeline_checkpoints_total",
		"Durable checkpoints written.",
		func() float64 { return float64(s.Checkpoints()) })
	reg.RegisterTimer("provex_pipeline_checkpoint_seconds",
		"Cumulative checkpoint time (retry drain, store sync, atomic write, WAL truncate).",
		&s.ckptTimer)
	reg.RegisterGaugeFunc("provex_pipeline_queue_depth",
		"Messages waiting in the ingest queue (capacity reached = producers blocked on backpressure).",
		func() float64 { return float64(len(s.in)) })
	reg.RegisterGaugeFunc("provex_pipeline_queue_capacity",
		"Capacity of the ingest queue.",
		func() float64 { return float64(cap(s.in)) })
}

// New builds a Service around proc. Call Start before Submit.
func New(proc *query.Processor, opts Options) *Service {
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	return &Service{
		opts: opts,
		proc: proc,
		in:   make(chan *tweet.Message, opts.Buffer),
		done: make(chan struct{}),
	}
}

// Start launches the writer goroutine.
func (s *Service) Start() {
	go s.run()
}

func (s *Service) run() {
	defer close(s.done)
	workers := s.opts.Workers
	if workers == 0 {
		workers = s.proc.Engine().Config().Parallel.Workers
	}
	if workers > 1 {
		s.runParallel(workers)
	} else {
		for m := range s.in {
			s.apply(core.Prepare(m))
		}
	}
	// Final checkpoint on drain, so Stop leaves durable state. Read
	// the count through the locked accessor: Stop's caller goroutine
	// observes ingested too, and the writer is not the only reader by
	// the time the channel drains.
	if s.Ingested() > 0 && (s.opts.CheckpointEvery > 0 || s.opts.Durable != nil) {
		s.checkpoint()
	}
}

// runParallel fans keyword extraction out over a PreparePool while this
// goroutine stays the only writer: prepared messages are applied
// strictly in submission order, so the resulting bundle state is
// identical to the serial path.
func (s *Service) runParallel(workers int) {
	pool := NewPreparePool(workers, 0)
	go func() {
		for m := range s.in {
			pool.Dispatch(m)
		}
		pool.Close()
	}()
	for {
		p, ok := pool.Next()
		if !ok {
			return
		}
		s.apply(p)
	}
}

// apply is the sequential half of ingest: make the message durable
// (WAL-before-apply), mutate engine state under the write lock and
// checkpoint on cadence.
func (s *Service) apply(p core.Prepared) {
	if d := s.opts.Durable; d != nil {
		if err := d.Log(p.Doc.Msg); err != nil {
			// The message stays in memory but is not crash-safe:
			// degraded durability, latched and surfaced by Err while
			// ingest continues (availability over durability).
			s.setWALErr(err)
		}
	}
	s.mu.Lock()
	s.proc.InsertPrepared(p)
	s.ingested++
	n := s.ingested
	s.mu.Unlock()
	if s.opts.CheckpointEvery > 0 && n%s.opts.CheckpointEvery == 0 {
		s.checkpoint()
	}
}

// checkpoint writes engine state to disk atomically. Only the writer
// goroutine calls it. Failures are latched and surfaced by Err.
func (s *Service) checkpoint() {
	start := time.Now()
	defer func() { s.ckptTimer.Observe(time.Since(start)) }()
	if d := s.opts.Durable; d != nil {
		// Draining parked flushes mutates the engine: write lock.
		s.mu.Lock()
		d.DrainRetries()
		s.mu.Unlock()
		// The checkpoint itself only reads — queries stay answerable.
		s.mu.RLock()
		err := d.Checkpoint()
		s.mu.RUnlock()
		if err != nil {
			s.setCkptErr(err)
			return
		}
		s.mu.Lock()
		s.ckptCount++
		s.mu.Unlock()
		return
	}
	s.mu.RLock()
	err := s.proc.Engine().SaveCheckpoint(nil, s.opts.CheckpointPath)
	s.mu.RUnlock()
	if err != nil {
		s.setCkptErr(err)
		return
	}
	s.mu.Lock()
	s.ckptCount++
	s.mu.Unlock()
}

func (s *Service) setCkptErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ckptErr == nil {
		s.ckptErr = fmt.Errorf("pipeline: checkpoint: %w", err)
	}
}

func (s *Service) setWALErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.walErr == nil {
		s.walErr = fmt.Errorf("pipeline: wal: %w", err)
	}
}

// Submit enqueues one message for ingest, blocking when the buffer is
// full. Messages must be submitted in stream (date) order.
func (s *Service) Submit(m *tweet.Message) error {
	s.stopMu.Lock()
	if s.closed {
		s.stopMu.Unlock()
		return ErrClosed
	}
	// Hold stopMu across the send so Stop cannot close the channel
	// between the check and the send.
	defer s.stopMu.Unlock()
	s.in <- m
	return nil
}

// Stop drains the queue, waits for the writer to finish (including the
// final checkpoint) and returns the first background error, if any.
func (s *Service) Stop() error {
	s.stopMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.in)
	}
	s.stopMu.Unlock()
	<-s.done
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.firstErrLocked()
}

// Err surfaces the first background failure without stopping.
func (s *Service) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.firstErrLocked()
}

func (s *Service) firstErrLocked() error {
	if s.ckptErr != nil {
		return s.ckptErr
	}
	if s.walErr != nil {
		return s.walErr
	}
	return s.proc.Engine().Err()
}

// Ingested returns how many messages the writer has processed.
func (s *Service) Ingested() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ingested
}

// Checkpoints returns how many checkpoints have been written.
func (s *Service) Checkpoints() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ckptCount
}

// Snapshot returns engine statistics under the read lock.
func (s *Service) Snapshot() core.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proc.Engine().Snapshot()
}

// SearchBundles answers a provenance bundle query (Eq. 7) under the
// read lock.
func (s *Service) SearchBundles(q string, k int) []query.BundleHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proc.SearchBundles(q, k)
}

// SearchMessages answers a conventional message query under the read
// lock.
func (s *Service) SearchMessages(q string, k int) []query.MessageHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proc.SearchMessages(q, k)
}

// Trail renders a bundle's provenance forest under the read lock.
func (s *Service) Trail(id bundle.ID) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proc.Trail(id)
}

// Bundle resolves a bundle (pool or disk) under the read lock.
func (s *Service) Bundle(id bundle.ID) (*bundle.Bundle, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proc.Bundle(id)
}

// Trending returns the hottest live bundles under the read lock.
func (s *Service) Trending(k int) []trending.Topic {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proc.Trending(k)
}
