// Crash-safe ingest: Durable couples an engine with a write-ahead log
// and atomic checkpoints so that a killed process recovers to exactly
// the state it acknowledged. Recovery is newest checkpoint + WAL
// replay: OpenDurable loads the checkpoint (if any), then re-inserts
// every logged message with a sequence number beyond the checkpoint's
// coverage. Checkpoint() inverts the dependency — once engine state is
// durably on disk the log is redundant and is truncated.
//
// Durable is writer-side state: Log, Ingest, Checkpoint, SyncWAL, Seq
// and Close must all be called from the goroutine that owns this
// Durable's shard — the Service's writer loop, a serial tool's main
// loop, or (sharded mode, DESIGN.md §2i) the per-shard commit
// goroutine, which owns its shard's Durable exclusively for the round.
// Engine reads may happen concurrently under whatever lock the caller
// already uses for queries; WALSyncedSeq and ReadWAL are safe from any
// goroutine.

package pipeline

import (
	"errors"
	"fmt"
	"io/fs"

	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/metrics"
	"provex/internal/storage"
	"provex/internal/tweet"
	"provex/internal/wal"
)

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// FS is the filesystem everything durable goes through; nil uses
	// the real one. Tests swap in fsx.MemFS / fsx.FaultFS here.
	FS fsx.FS
	// CheckpointPath is the engine checkpoint file.
	CheckpointPath string
	// WALDir is the write-ahead log directory.
	WALDir string
	// WALSyncEvery fsyncs the log after every n appends; <=1 syncs
	// every append (strongest guarantee, highest cost).
	WALSyncEvery int
	// ReplayLimit, when non-zero, caps recovery at WAL sequence
	// ReplayLimit: records beyond it are left in the log but NOT applied
	// to the engine. The sharded engine uses it to trim every shard back
	// to the last round-ledger barrier so recovery lands on a globally
	// consistent cut (DESIGN.md §2i); the caller MUST checkpoint (and
	// thereby truncate) before appending again, or the stale tail would
	// collide with re-issued sequence numbers.
	ReplayLimit uint64
}

// Durable is the crash-safety shell around an engine: a WAL of raw
// ingested messages plus checkpoints of engine state.
type Durable struct {
	fs   fsx.FS
	opts DurableOptions
	eng  *core.Engine
	st   *storage.Store
	wal  *wal.Log

	seq      uint64 // last sequence handed to the WAL (= engine message ordinal)
	replayed int    // messages recovered from the WAL at open
}

// OpenDurable restores an engine from CheckpointPath (a missing file
// means a fresh engine), opens the WAL and replays every record past
// the checkpoint's message count. store may be nil, as in core.New.
func OpenDurable(cfg core.Config, store *storage.Store, onEdge core.EdgeFunc, opts DurableOptions) (*Durable, error) {
	fsys := fsx.Default(opts.FS)
	if opts.CheckpointPath == "" || opts.WALDir == "" {
		return nil, errors.New("pipeline: durable: CheckpointPath and WALDir are required")
	}
	eng, err := core.LoadCheckpoint(cfg, store, onEdge, fsys, opts.CheckpointPath)
	if errors.Is(err, fs.ErrNotExist) {
		eng = core.New(cfg, store, onEdge)
	} else if err != nil {
		return nil, err
	}

	l, err := wal.Open(opts.WALDir, wal.Options{FS: fsys, SyncEvery: opts.WALSyncEvery})
	if err != nil {
		return nil, err
	}
	base := uint64(eng.Snapshot().Messages)
	replayed := 0
	err = l.Replay(base, func(seq uint64, m *tweet.Message) error {
		if opts.ReplayLimit > 0 && seq > opts.ReplayLimit {
			return nil // beyond the consistent cut: never acknowledged
		}
		eng.Insert(m)
		replayed++
		return nil
	})
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("pipeline: durable: replay: %w", err)
	}
	return &Durable{
		fs:       fsys,
		opts:     opts,
		eng:      eng,
		st:       store,
		wal:      l,
		seq:      uint64(eng.Snapshot().Messages),
		replayed: replayed,
	}, nil
}

// Engine exposes the recovered engine.
func (d *Durable) Engine() *core.Engine { return d.eng }

// RegisterMetrics exposes the durability layer's instruments on reg:
// the WAL's append/fsync/size series plus the replay count from the
// last recovery. Registering the engine's own metrics is the caller's
// choice (Engine().RegisterMetrics) — the split keeps memory-only and
// durable deployments symmetrical. labels are extra key/value pairs
// baked into every series (the sharded engine passes ("shard", "i")).
func (d *Durable) RegisterMetrics(reg *metrics.Registry, labels ...string) {
	d.wal.RegisterMetrics(reg, labels...)
	reg.RegisterGaugeFunc("provex_wal_replayed_messages",
		"Messages recovered from the WAL at the last open (work a crash would have lost without the log).",
		func() float64 { return float64(d.replayed) }, labels...)
}

// Replayed reports how many messages the WAL contributed at open —
// the work a crash would have lost without the log.
func (d *Durable) Replayed() int { return d.replayed }

// LogSize returns the active WAL file's byte length.
func (d *Durable) LogSize() int64 { return d.wal.Size() }

// Log appends m to the WAL under the next sequence number. Call it
// immediately BEFORE applying m to the engine; on error the message
// was not made durable and the sequence is not consumed.
func (d *Durable) Log(m *tweet.Message) error {
	next := d.seq + 1
	if err := d.wal.Append(next, m); err != nil {
		return err
	}
	d.seq = next
	return nil
}

// Ingest is the serial convenience path (WAL append, then engine
// insert) for tools that own the engine outright. Concurrent services
// call Log from their writer loop instead and apply under their own
// lock.
func (d *Durable) Ingest(m *tweet.Message) (core.InsertResult, error) {
	if err := d.Log(m); err != nil {
		return core.InsertResult{}, err
	}
	return d.eng.Insert(m), nil
}

// DrainRetries re-attempts every parked bundle flush. It MUTATES the
// engine — a concurrent service must hold its write lock. Failures are
// not fatal to checkpointing: checkpoints persist still-parked bundles.
func (d *Durable) DrainRetries() { _ = d.eng.DrainFlushRetries() }

// Checkpoint makes the engine state durable and truncates the WAL, in
// the order that keeps every acknowledged message recoverable at all
// times: sync the bundle store, atomically write the checkpoint, then
// discard the now-redundant log. It only READS engine state — callers
// holding a read lock (queries still allowed) are safe, provided
// DrainRetries ran just before under the write lock.
func (d *Durable) Checkpoint() error {
	if d.st != nil {
		if err := d.st.Sync(); err != nil {
			return fmt.Errorf("pipeline: durable: store sync: %w", err)
		}
	}
	if err := d.eng.SaveCheckpoint(d.fs, d.opts.CheckpointPath); err != nil {
		return err
	}
	// The checkpoint now covers every engine message, so WAL sequences
	// must rejoin the engine ordinal here: if a failed Log ever skipped
	// a message (degraded mode), seq lags the engine count and every
	// post-checkpoint append would sit at or below the count recovery
	// passes to Replay — filtered out, silently losing logged messages.
	d.seq = uint64(d.eng.Snapshot().Messages)
	if err := d.wal.Truncate(); err != nil {
		// Stale log records are filtered by sequence on the next open;
		// surface the error but the checkpoint itself stands.
		return err
	}
	// The log is empty: rebase its sequence watermark onto the engine
	// ordinal. A no-op except after a ReplayLimit-trimmed recovery,
	// where the WAL scan saw torn-round sequences above the consistent
	// cut that would otherwise collide with re-issued ones.
	d.wal.Rebase(d.seq)
	return nil
}

// WALSyncedSeq returns the WAL's durable watermark — the highest
// sequence fully on stable storage. Unlike the writer-side methods it
// is safe from any goroutine (replication shippers read it from HTTP
// handlers).
func (d *Durable) WALSyncedSeq() uint64 { return d.wal.SyncedSeq() }

// SyncWAL forces an fsync of any records appended since the previous
// sync, regardless of WALSyncEvery. The sharded commit phase calls it
// at the end of each round so the round ledger's per-shard watermarks
// only ever cover records that are actually on stable storage.
func (d *Durable) SyncWAL() error { return d.wal.Sync() }

// Seq returns the last WAL sequence handed out by Log — the shard
// round ledger records it as the shard's durable watermark after a
// round's appends are synced. Writer-goroutine only, like Log.
func (d *Durable) Seq() uint64 { return d.seq }

// ReadWAL collects durable WAL record payloads with sequence in
// (after, watermark], resuming from hint when possible. Safe to call
// concurrently with the single writer: it opens its own file handles
// and takes no engine or pipeline locks, so shipping replication
// batches can never block ingest. See wal.ReadBatch for the ErrGap
// contract.
func (d *Durable) ReadWAL(after uint64, hint wal.Cursor, maxBytes int) (wal.Batch, error) {
	return d.wal.ReadBatch(after, hint, maxBytes)
}

// OpenCheckpoint opens the newest checkpoint file for reading (the
// replication bootstrap payload). The checkpoint is written atomically
// (tmp + sync + rename), so a handle opened here always sees one
// complete checkpoint even while Checkpoint() replaces it. Returns
// fs.ErrNotExist when no checkpoint has been taken yet.
func (d *Durable) OpenCheckpoint() (fsx.File, error) {
	return d.fs.Open(d.opts.CheckpointPath)
}

// Close syncs and closes the WAL. It does not close the bundle store,
// which the caller owns.
func (d *Durable) Close() error { return d.wal.Close() }
