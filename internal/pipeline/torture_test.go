package pipeline

// Crash-torture capstone: ingest a fixed stream under randomized fault
// injection — every mutating filesystem op is a potential failure
// point, each failure is followed by a simulated crash (the in-memory
// disk reverts to its last-synced image) and a fresh recovery — and
// assert that the final recovered state is IDENTICAL to an
// uninterrupted run over the same stream: engine counters, pool stats,
// live bundle bytes, clock, and the logical content of the bundle
// store. Seeds are fixed and printed in the subtest name so a failure
// reproduces exactly.

import (
	"fmt"
	"math/rand"
	"testing"

	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/storage"
)

func TestCrashTorture(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tortureRun(t, seed)
		})
	}
}

func tortureRun(t *testing.T, seed int64) {
	const (
		total     = 2500
		ckptEvery = 500
		maxRounds = 60
	)
	rng := rand.New(rand.NewSource(seed))
	msgs := genMessages(seed, total)

	cfg := core.PartialIndexConfig(300)
	// Transient faults must never escalate to permanent drops — a drop
	// is real data loss and would (correctly) break state equality.
	cfg.FlushRetry.MaxAttempts = 1 << 30
	cfg.FlushRetry.MaxQueue = 1 << 20
	storeOpts := storage.Options{SegmentSize: 8192, SyncEvery: 4}

	// Uninterrupted reference run on a pristine disk.
	refOpts := storeOpts
	refOpts.FS = fsx.NewMem()
	refStore, err := storage.Open("store", refOpts)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.New(cfg, refStore, nil)
	for _, m := range msgs {
		ref.Insert(m)
	}
	if err := refStore.Sync(); err != nil {
		t.Fatal(err)
	}

	// Tortured run: same stream, same config, hostile disk.
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	ops := fsx.MutatingOps()
	crashes := 0
	for round := 0; ; round++ {
		if round >= maxRounds {
			t.Fatalf("seed %d: still not converged after %d rounds", seed, maxRounds)
		}
		tOpts := storeOpts
		tOpts.FS = ff
		st, err := storage.Open("store", tOpts)
		if err != nil {
			t.Fatalf("seed %d round %d: store reopen: %v", seed, round, err)
		}
		dOpts := durableOpts(ff)
		dOpts.WALSyncEvery = 1 // acknowledged == durable
		d, err := OpenDurable(cfg, st, nil, dOpts)
		if err != nil {
			t.Fatalf("seed %d round %d: recovery failed: %v", seed, round, err)
		}
		done := int(d.Engine().Snapshot().Messages)

		// Arm one randomized frozen fault: once it trips, the armed op
		// class keeps failing until the crash — a dying disk, not a
		// blip. Alternate between "any mutating op" (deep trigger
		// counts) and a single op class (shallow counts, so rare ops
		// like rename and remove get hit too).
		fault := fsx.Fault{Freeze: true}
		switch rng.Intn(3) {
		case 0:
			fault.Err = fsx.ErrNoSpace
		case 1:
			fault.TornBytes = rng.Intn(8)
			fault.Err = fsx.ErrNoSpace
		}
		// Round 0 always arms across every op class: the full stream
		// runs >1000 mutating ops, so at least one crash is certain.
		if round == 0 || rng.Intn(2) == 0 {
			ff.Arm(1+rng.Int63n(1000), fault, ops...)
		} else {
			ff.Arm(1+rng.Int63n(40), fault, ops[rng.Intn(len(ops))])
		}

		crashed := false
		for i := done; i < total; i++ {
			if _, err := d.Ingest(msgs[i]); err != nil {
				crashed = true
				break
			}
			if (i+1)%ckptEvery == 0 {
				d.DrainRetries()
				if err := d.Checkpoint(); err != nil {
					crashed = true
					break
				}
			}
		}
		ff.Disarm()
		if !crashed {
			d.DrainRetries()
			if err := d.Checkpoint(); err != nil {
				t.Fatalf("seed %d round %d: clean-path checkpoint: %v", seed, round, err)
			}
			// A fault may have latched the open store (unrepairable
			// tail) without surfacing through Ingest; parked bundles
			// then need one more recovery cycle to land.
			if d.Engine().Snapshot().FlushParked > 0 {
				crashed = true
			}
		}
		if crashed {
			crashes++
			mem.Crash()
			continue
		}
		d.Close()
		st.Close()
		break
	}
	t.Logf("seed %d: survived %d crashes", seed, crashes)
	if crashes == 0 {
		t.Fatalf("seed %d: no fault ever tripped — the torture is not torturing", seed)
	}

	// One last crash: the clean shutdown must have made everything
	// durable, so the post-crash image recovers to full state.
	mem.Crash()
	fOpts := storeOpts
	fOpts.FS = mem
	st, err := storage.Open("store", fOpts)
	if err != nil {
		t.Fatalf("seed %d: final reopen: %v", seed, err)
	}
	d, err := OpenDurable(cfg, st, nil, durableOpts(mem))
	if err != nil {
		t.Fatalf("seed %d: final recovery: %v", seed, err)
	}
	if d.Engine().Err() != nil {
		t.Fatalf("seed %d: recovered engine degraded: %v", seed, d.Engine().Err())
	}
	assertEnginesEqual(t, ref, d.Engine())
	assertStoresEqual(t, refStore, st)
}
