package pipeline

// Order-preserving parallel prepare: the pure half of Engine.Insert
// (parse + keyword extraction, core.Prepare) fans out across a worker
// pool while the sequential apply stage consumes results strictly in
// submission order. The paper's Figure 13 shows the match stage
// dominating ingest cost, but prepare is the one stage with no data
// dependency between messages — so it is the one that parallelises
// without touching bundle-assignment semantics at all.
//
// Ordering works through a channel of single-slot result channels: the
// dispatcher reserves a slot in the order queue *before* handing the
// job to a worker, so the consumer sees slots in dispatch order no
// matter which worker finishes first. Slots are recycled through a
// freelist, making the steady-state pool allocation-free. The freelist
// also bounds in-flight work (backpressure): a Dispatch with no free
// slot blocks until the consumer drains one.

import (
	"errors"
	"io"
	"sync"

	"provex/internal/core"
	"provex/internal/stream"
	"provex/internal/tweet"
)

// PreparePool runs core.Prepare on a fixed worker set while preserving
// dispatch order on the consumer side. One goroutine dispatches, one
// consumes; the pool itself is not a multi-producer queue.
type PreparePool struct {
	jobs  chan prepJob
	order chan chan core.Prepared
	slots chan chan core.Prepared
	wg    sync.WaitGroup
}

type prepJob struct {
	m   *tweet.Message
	out chan core.Prepared
}

// NewPreparePool starts workers prepare goroutines with the given
// number of in-flight slots (depth <= 0 picks 4 per worker — enough to
// keep workers busy across apply-stage jitter without hoarding
// messages).
func NewPreparePool(workers, depth int) *PreparePool {
	if workers < 1 {
		workers = 1
	}
	if depth <= 0 {
		depth = workers * 4
	}
	p := &PreparePool{
		jobs:  make(chan prepJob, depth),
		order: make(chan chan core.Prepared, depth),
		slots: make(chan chan core.Prepared, depth),
	}
	for i := 0; i < depth; i++ {
		p.slots <- make(chan core.Prepared, 1)
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				j.out <- core.Prepare(j.m)
			}
		}()
	}
	return p
}

// Dispatch hands m to the worker pool, blocking while all in-flight
// slots are taken (backpressure). Single-dispatcher only; must not be
// called after Close.
func (p *PreparePool) Dispatch(m *tweet.Message) {
	slot := <-p.slots
	// Reserve the ordering position before the job can race ahead.
	p.order <- slot
	p.jobs <- prepJob{m: m, out: slot}
}

// Close signals that no more messages will be dispatched. In-flight
// work still drains through Next; the workers exit once done.
func (p *PreparePool) Close() {
	close(p.jobs)
	close(p.order)
}

// Next returns prepared messages in exact dispatch order; ok is false
// once the pool is closed and drained. Single-consumer only.
func (p *PreparePool) Next() (core.Prepared, bool) {
	slot, ok := <-p.order
	if !ok {
		p.wg.Wait()
		return core.Prepared{}, false
	}
	prep := <-slot
	p.slots <- slot
	return prep, true
}

// PreparedSource adapts a stream.Source into an ordered stream of
// prepared messages: a feeder goroutine pulls the source and keeps
// `workers` prepare goroutines busy, while Next yields results in
// stream order. A source error (including io.EOF) is surfaced by Next
// only after every message dispatched before it has been yielded, so
// callers never lose tail messages.
type PreparedSource struct {
	pool *PreparePool
	err  error // written by the feeder before Close, read after drain
}

// NewPreparedSource starts the feeder. depth <= 0 picks the pool
// default.
func NewPreparedSource(src stream.Source, workers, depth int) *PreparedSource {
	ps := &PreparedSource{pool: NewPreparePool(workers, depth)}
	go func() {
		for {
			m, err := src.Next()
			if err != nil {
				ps.err = err
				ps.pool.Close()
				return
			}
			ps.pool.Dispatch(m)
		}
	}()
	return ps
}

// Next returns the next prepared message in stream order, io.EOF after
// the last one, or the source's error. Single-consumer only.
func (ps *PreparedSource) Next() (core.Prepared, error) {
	p, ok := ps.pool.Next()
	if !ok {
		// The pool.Next channel-close observation orders this read
		// after the feeder's ps.err write.
		return core.Prepared{}, ps.err
	}
	return p, nil
}

// IngestAll drains src through e, preparing messages on
// e.Config().Parallel.Workers goroutines while applying strictly in
// stream order. With Workers <= 1 it is exactly Engine.InsertAll.
// Returns the number of messages ingested.
func IngestAll(e *core.Engine, src stream.Source) (int, error) {
	workers := e.Config().Parallel.Workers
	if workers <= 1 {
		return e.InsertAll(src)
	}
	ps := NewPreparedSource(src, workers, 0)
	n := 0
	for {
		p, err := ps.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		e.InsertPrepared(p)
		n++
	}
}
