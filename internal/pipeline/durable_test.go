package pipeline

// Durable layer: recovery equals checkpoint + WAL replay, acknowledged
// messages survive crashes, and the Service integration keeps the same
// guarantees under concurrent ingest.

import (
	"testing"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/fsx"
	"provex/internal/query"
	"provex/internal/storage"
	"provex/internal/tweet"
)

func durableOpts(fs fsx.FS) DurableOptions {
	return DurableOptions{
		FS:             fs,
		CheckpointPath: "engine.ckpt",
		WALDir:         "wal",
		WALSyncEvery:   1,
	}
}

// genMessages pre-renders a deterministic stream.
func genMessages(seed int64, n int) []*tweet.Message {
	g := smallGen(seed)
	msgs := make([]*tweet.Message, n)
	for i := range msgs {
		msgs[i] = g.Next()
	}
	return msgs
}

func TestDurableFreshOpenAndReopen(t *testing.T) {
	mem := fsx.NewMem()
	cfg := core.PartialIndexConfig(300)
	msgs := genMessages(21, 2000)

	d, err := OpenDurable(cfg, nil, nil, durableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[:1200] {
		if _, err := d.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[1200:] {
		if _, err := d.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: checkpoint holds 1200, the WAL the remaining 800.
	d2, err := OpenDurable(cfg, nil, nil, durableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Replayed() != 800 {
		t.Fatalf("Replayed = %d, want 800", d2.Replayed())
	}
	if got := d2.Engine().Snapshot().Messages; got != 2000 {
		t.Fatalf("recovered Messages = %d, want 2000", got)
	}

	// Reference: uninterrupted run over the same stream.
	ref := core.New(cfg, nil, nil)
	for _, m := range msgs {
		ref.Insert(m)
	}
	assertEnginesEqual(t, ref, d2.Engine())
}

func TestDurableCrashRecoversAcknowledged(t *testing.T) {
	mem := fsx.NewMem()
	cfg := core.PartialIndexConfig(300)
	msgs := genMessages(22, 1500)

	d, err := OpenDurable(cfg, nil, nil, durableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[:600] {
		if _, err := d.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[600:1000] {
		if _, err := d.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	// No Close, no checkpoint: the process dies. WALSyncEvery=1 means
	// every acknowledged Ingest is durable.
	mem.Crash()

	d2, err := OpenDurable(cfg, nil, nil, durableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Engine().Snapshot().Messages; got != 1000 {
		t.Fatalf("recovered Messages = %d, want all 1000 acknowledged", got)
	}
	// Resume exactly where the recovered state says and finish the
	// stream; the result must match an uninterrupted run.
	for _, m := range msgs[1000:] {
		if _, err := d2.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	ref := core.New(cfg, nil, nil)
	for _, m := range msgs {
		ref.Insert(m)
	}
	assertEnginesEqual(t, ref, d2.Engine())
}

// TestCheckpointResyncsSeqAfterFailedLog: a failed WAL append in
// degraded mode (message applied to the engine but never logged) must
// not leave WAL sequences lagging engine ordinals past the next
// checkpoint — otherwise recovery's Replay(afterSeq = checkpoint count)
// filters out acknowledged, successfully-logged later messages.
func TestCheckpointResyncsSeqAfterFailedLog(t *testing.T) {
	mem := fsx.NewMem()
	ff := fsx.NewFault(mem)
	cfg := core.PartialIndexConfig(300)
	msgs := genMessages(24, 40)

	d, err := OpenDurable(cfg, nil, nil, durableOpts(ff))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[:20] {
		if _, err := d.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	// Degraded-mode step, exactly as Service.apply does it: the WAL
	// append fails (torn write, tail repaired) but the message still
	// enters the engine — in memory only, not crash-safe.
	ff.Arm(1, fsx.Fault{TornBytes: 3}, fsx.OpWrite)
	if err := d.Log(msgs[20]); err == nil {
		t.Fatal("Log succeeded despite injected write fault")
	}
	ff.Disarm()
	d.Engine().Insert(msgs[20])

	for _, m := range msgs[21:30] {
		if _, err := d.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Everything after the checkpoint is logged successfully and
	// acknowledged, so it must survive a crash.
	for _, m := range msgs[30:] {
		if _, err := d.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	mem.Crash()

	d2, err := OpenDurable(cfg, nil, nil, durableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Replayed() != 10 {
		t.Fatalf("Replayed = %d, want all 10 post-checkpoint messages", d2.Replayed())
	}
	if got := d2.Engine().Snapshot().Messages; got != 40 {
		t.Fatalf("recovered Messages = %d, want 40", got)
	}
}

// TestDurableServiceIntegration: the concurrent Service with a Durable
// attached WAL-logs every applied message and checkpoints on cadence,
// so a kill between checkpoints recovers everything the writer applied.
func TestDurableServiceIntegration(t *testing.T) {
	mem := fsx.NewMem()
	cfg := core.PartialIndexConfig(300)
	msgs := genMessages(23, 3000)

	st, err := storage.Open("store", storage.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDurable(cfg, st, nil, durableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	proc := query.New(d.Engine(), query.DefaultOptions())
	svc := New(proc, Options{Durable: d, CheckpointEvery: 1000})
	svc.Start()
	for _, m := range msgs {
		if err := svc.Submit(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if svc.Checkpoints() == 0 {
		t.Fatal("no checkpoints written")
	}
	// Stop's final checkpoint truncated the WAL.
	if d.LogSize() > 16 {
		t.Fatalf("WAL not truncated after final checkpoint: %d bytes", d.LogSize())
	}
	d.Close()

	// Crash (discard anything unsynced) and recover.
	mem.Crash()
	st2, err := storage.Open("store", storage.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurable(cfg, st2, nil, durableOpts(mem))
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Engine().Snapshot().Messages; got != int64(len(msgs)) {
		t.Fatalf("recovered Messages = %d, want %d", got, len(msgs))
	}

	refStore, _ := storage.Open("refstore", storage.Options{FS: fsx.NewMem()})
	ref := core.New(cfg, refStore, nil)
	for _, m := range msgs {
		ref.Insert(m)
	}
	assertEnginesEqual(t, ref, d2.Engine())
	assertStoresEqual(t, refStore, st2)
}

// assertEnginesEqual compares the deterministic portion of two engines:
// message/edge counters, pool statistics, live bundle bytes and the
// bundle ID watermark. Flush/timer stats legitimately differ.
func assertEnginesEqual(t *testing.T, want, got *core.Engine) {
	t.Helper()
	ws, gs := want.Snapshot(), got.Snapshot()
	if ws.Messages != gs.Messages || ws.EdgesCreated != gs.EdgesCreated {
		t.Fatalf("counters differ: messages %d/%d edges %d/%d",
			gs.Messages, ws.Messages, gs.EdgesCreated, ws.EdgesCreated)
	}
	if ws.BundlesCreated != gs.BundlesCreated || ws.BundlesLive != gs.BundlesLive {
		t.Fatalf("bundles differ: created %d/%d live %d/%d",
			gs.BundlesCreated, ws.BundlesCreated, gs.BundlesLive, ws.BundlesLive)
	}
	if ws.Pool != gs.Pool {
		t.Fatalf("pool stats differ:\n got %+v\nwant %+v", gs.Pool, ws.Pool)
	}
	if want.Pool().NextID() != got.Pool().NextID() {
		t.Fatalf("NextID %d, want %d", got.Pool().NextID(), want.Pool().NextID())
	}
	if !want.Now().Equal(got.Now()) {
		t.Fatalf("clock %v, want %v", got.Now(), want.Now())
	}
	mismatches := 0
	want.Pool().All(func(b *bundle.Bundle) {
		g := got.Pool().Get(b.ID())
		if g == nil || string(g.Marshal()) != string(b.Marshal()) {
			mismatches++
		}
	})
	if mismatches > 0 {
		t.Fatalf("%d live bundles differ", mismatches)
	}
}

// assertStoresEqual compares the logical content of two bundle stores.
func assertStoresEqual(t *testing.T, want, got *storage.Store) {
	t.Helper()
	wids, gids := want.IDs(), got.IDs()
	if len(wids) != len(gids) {
		t.Fatalf("store sizes differ: got %d want %d", len(gids), len(wids))
	}
	for _, id := range wids {
		wb, err := want.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := got.Get(id)
		if err != nil {
			t.Fatalf("bundle %d missing: %v", id, err)
		}
		if string(wb.Marshal()) != string(gb.Marshal()) {
			t.Fatalf("stored bundle %d differs", id)
		}
	}
}
