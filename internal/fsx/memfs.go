package fsx

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory filesystem with crash semantics: every file
// tracks both its written content and its last-synced image, and
// Crash() discards everything that was never fsynced — files revert to
// their synced image, and files that were never synced at all disappear
// (their directory entry was never made durable). This is the
// pessimistic model a torture test wants: nothing survives a crash
// unless the code under test explicitly synced it.
//
// Rename is modelled as atomic and immediately durable (the layer above
// always syncs file content before renaming, which is the journalled-
// filesystem ordering the atomic-checkpoint pattern relies on).
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile // guarded by mu
	dirs  map[string]bool     // guarded by mu
}

type memFile struct {
	mu     sync.Mutex
	data   []byte // current (volatile) content; guarded by mu
	synced []byte // durable image; nil = never synced; guarded by mu
}

// NewMem returns an empty in-memory filesystem with a root directory.
func NewMem() *MemFS {
	return &MemFS{
		files: make(map[string]*memFile),
		dirs:  map[string]bool{".": true, "/": true},
	}
}

// Crash simulates a power loss: every file reverts to its last-synced
// image, and never-synced files are removed entirely.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		f.mu.Lock()
		if f.synced == nil {
			f.mu.Unlock()
			delete(m.files, name)
			continue
		}
		f.data = append([]byte(nil), f.synced...)
		f.mu.Unlock()
	}
}

// SyncAll marks the current content of every file as durable — a
// convenience for tests that build fixture state and only then start
// injecting faults.
func (m *MemFS) SyncAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.mu.Lock()
		f.synced = append([]byte(nil), f.data...)
		f.mu.Unlock()
	}
}

// ReadFile returns a copy of the current content of name — test helper.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	name = clean(name)
	m.mu.Lock()
	f, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return nil, notExist("read", name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.data...), nil
}

// WriteFile replaces the content of name (creating it) and marks it
// synced — test helper for building durable fixtures and flipping bits.
func (m *MemFS) WriteFile(name string, data []byte) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[filepath.Dir(name)] = true
	m.files[name] = &memFile{
		data:   append([]byte(nil), data...),
		synced: append([]byte(nil), data...),
	}
}

// dirExistsLocked reports whether dir exists. Caller holds m.mu.
func (m *MemFS) dirExistsLocked(dir string) bool {
	return m.dirs[dir] || dir == "." || dir == "/"
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, _ os.FileMode) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	switch {
	case ok && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, exist("open", name)
	case !ok && flag&os.O_CREATE == 0:
		return nil, notExist("open", name)
	case !ok:
		if !m.dirExistsLocked(filepath.Dir(name)) {
			return nil, notExist("open", name)
		}
		f = &memFile{}
		m.files[name] = f
	}
	f.mu.Lock()
	if flag&os.O_TRUNC != 0 {
		f.data = nil
	}
	off := int64(0)
	f.mu.Unlock()
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	return &memHandle{fs: m, name: name, f: f, off: off, append: flag&os.O_APPEND != 0, writable: writable}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	return m.OpenFile(name, os.O_RDONLY, 0)
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	return m.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Rename implements FS.
func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return notExist("rename", oldpath)
	}
	if !m.dirExistsLocked(filepath.Dir(newpath)) {
		return notExist("rename", newpath)
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return notExist("remove", name)
	}
	delete(m.files, name)
	return nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(path string, _ os.FileMode) error {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(name string) ([]string, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirExistsLocked(name) {
		return nil, notExist("readdir", name)
	}
	var names []string
	prefix := name + string(filepath.Separator)
	if name == "." {
		prefix = ""
	}
	seen := map[string]bool{}
	for p := range m.files {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		if i := strings.IndexByte(rest, filepath.Separator); i >= 0 {
			rest = rest[:i] // nested entry: report the subdirectory once
		}
		if rest != "" && !seen[rest] {
			seen[rest] = true
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

// memHandle is one open descriptor onto a memFile, with its own offset.
type memHandle struct {
	fs       *MemFS
	name     string
	f        *memFile
	off      int64
	append   bool
	writable bool
	closed   bool
}

// Name implements File.
func (h *memHandle) Name() string { return h.name }

// Read implements io.Reader.
func (h *memHandle) Read(p []byte) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if h.off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += int64(n)
	return n, nil
}

// ReadAt implements io.ReaderAt.
func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Write implements io.Writer.
func (h *memHandle) Write(p []byte) (int, error) {
	if !h.writable {
		return 0, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrPermission}
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if h.append {
		h.off = int64(len(h.f.data))
	}
	return h.writeAtLocked(p, h.off, true), nil
}

// WriteAt implements io.WriterAt.
func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	if !h.writable {
		return 0, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrPermission}
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return h.writeAtLocked(p, off, false), nil
}

// writeAtLocked writes p at off, growing the file as needed, moving the
// handle offset when cursor is set. Caller holds h.f.mu.
func (h *memHandle) writeAtLocked(p []byte, off int64, cursor bool) int {
	if grow := off + int64(len(p)) - int64(len(h.f.data)); grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
	}
	copy(h.f.data[off:], p)
	if cursor {
		h.off = off + int64(len(p))
	}
	return len(p)
}

// Seek implements io.Seeker.
func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.f.data)) + offset
	default:
		return 0, fmt.Errorf("fsx: bad whence %d", whence)
	}
	if h.off < 0 {
		return 0, fmt.Errorf("fsx: negative seek offset")
	}
	return h.off, nil
}

// Sync implements File: the current content becomes the durable image.
func (h *memHandle) Sync() error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	h.f.synced = append([]byte(nil), h.f.data...)
	return nil
}

// Truncate implements File.
func (h *memHandle) Truncate(size int64) error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	switch {
	case size < 0:
		return fmt.Errorf("fsx: negative truncate")
	case size <= int64(len(h.f.data)):
		h.f.data = h.f.data[:size]
	default:
		h.f.data = append(h.f.data, make([]byte, size-int64(len(h.f.data)))...)
	}
	return nil
}

// Close implements io.Closer.
func (h *memHandle) Close() error {
	h.closed = true
	return nil
}
