package fsx

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrInjected is the generic injected failure.
var ErrInjected = errors.New("fsx: injected fault")

// ErrNoSpace models ENOSPC from an injected full disk.
var ErrNoSpace = errors.New("fsx: injected fault: no space left on device")

// Op classifies a filesystem operation for fault matching.
type Op uint8

// Operation kinds. OpWrite covers Write and WriteAt; OpOpen covers
// every open/create variant.
const (
	OpOpen Op = iota
	OpWrite
	OpSync
	OpTruncate
	OpRename
	OpRemove
	opCount
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("op%d", uint8(o))
	}
}

// MutatingOps lists every operation that changes on-disk state — the
// default fault target set.
func MutatingOps() []Op { return []Op{OpOpen, OpWrite, OpSync, OpTruncate, OpRename, OpRemove} }

// Fault describes what happens when a FaultFS plan trips.
type Fault struct {
	// Err is the error returned; nil means ErrInjected.
	Err error
	// TornBytes > 0 turns a tripped write into a short write: that many
	// bytes (at most) land in the file before the error is returned —
	// the classic torn-write crash signature.
	TornBytes int
	// Freeze keeps the fault latched: after the trip, every further
	// mutating operation fails too, modelling a process whose storage
	// has gone away for good (until Disarm).
	Freeze bool
}

// FaultFS wraps an FS and injects one planned fault: the Nth operation
// matching the armed op set fails. It is safe for concurrent use.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	ops     [opCount]int64 // total operations seen, per kind; guarded by mu
	armed   bool           // guarded by mu
	match   [opCount]bool  // guarded by mu
	left    int64          // matching ops remaining before the trip; guarded by mu
	fault   Fault          // guarded by mu
	tripped bool           // guarded by mu
}

// NewFault wraps inner (nil = real filesystem) with an initially
// disarmed injector: all operations pass through untouched.
func NewFault(inner FS) *FaultFS {
	return &FaultFS{inner: Default(inner)}
}

// Arm plans one fault: the nth (1-based) operation matching ops fails
// with f. An empty ops list matches every mutating operation. Re-arming
// replaces any previous plan and clears the tripped state.
func (t *FaultFS) Arm(nth int64, f Fault, ops ...Op) {
	if nth < 1 {
		nth = 1
	}
	if f.Err == nil {
		f.Err = ErrInjected
	}
	if len(ops) == 0 {
		ops = MutatingOps()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.armed = true
	t.tripped = false
	t.left = nth
	t.fault = f
	t.match = [opCount]bool{}
	for _, o := range ops {
		t.match[o] = true
	}
}

// Disarm cancels the plan; subsequent operations pass through.
func (t *FaultFS) Disarm() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.armed = false
	t.tripped = false
}

// Tripped reports whether the armed fault has fired.
func (t *FaultFS) Tripped() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tripped
}

// OpCount returns how many operations of kind o have been observed —
// used by torture tests to size the random fault window.
func (t *FaultFS) OpCount(o Op) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops[o]
}

// TotalOps returns the count of all observed operations.
func (t *FaultFS) TotalOps() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, c := range t.ops {
		n += c
	}
	return n
}

// check counts one operation and decides whether it fails. The second
// return is the torn-write byte budget (only meaningful for OpWrite
// when err != nil).
func (t *FaultFS) check(o Op) (error, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops[o]++
	if !t.armed || !t.match[o] {
		return nil, 0
	}
	if t.tripped {
		if t.fault.Freeze {
			return t.fault.Err, 0
		}
		return nil, 0
	}
	t.left--
	if t.left > 0 {
		return nil, 0
	}
	t.tripped = true
	return t.fault.Err, t.fault.TornBytes
}

// OpenFile implements FS.
func (t *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err, _ := t.check(OpOpen); err != nil {
		return nil, err
	}
	f, err := t.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, t: t}, nil
}

// Open implements FS. Reads are not fault targets, so no check.
func (t *FaultFS) Open(name string) (File, error) {
	f, err := t.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, t: t}, nil
}

// Create implements FS.
func (t *FaultFS) Create(name string) (File, error) {
	if err, _ := t.check(OpOpen); err != nil {
		return nil, err
	}
	f, err := t.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, t: t}, nil
}

// Rename implements FS.
func (t *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := t.check(OpRename); err != nil {
		return err
	}
	return t.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (t *FaultFS) Remove(name string) error {
	if err, _ := t.check(OpRemove); err != nil {
		return err
	}
	return t.inner.Remove(name)
}

// MkdirAll implements FS.
func (t *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return t.inner.MkdirAll(path, perm)
}

// ReadDir implements FS.
func (t *FaultFS) ReadDir(name string) ([]string, error) {
	return t.inner.ReadDir(name)
}

// faultFile consults the injector on every mutating file operation.
type faultFile struct {
	File
	t *FaultFS
}

// Write implements io.Writer, honouring torn-write faults: a tripped
// write may land a prefix of p before reporting the error.
func (f *faultFile) Write(p []byte) (int, error) {
	err, torn := f.t.check(OpWrite)
	if err != nil {
		n := 0
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			n, _ = f.File.Write(p[:torn])
		}
		return n, err
	}
	return f.File.Write(p)
}

// WriteAt implements io.WriterAt with the same torn-write semantics.
func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	err, torn := f.t.check(OpWrite)
	if err != nil {
		n := 0
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			n, _ = f.File.WriteAt(p[:torn], off)
		}
		return n, err
	}
	return f.File.WriteAt(p, off)
}

// Sync implements File.
func (f *faultFile) Sync() error {
	if err, _ := f.t.check(OpSync); err != nil {
		return err
	}
	return f.File.Sync()
}

// Truncate implements File.
func (f *faultFile) Truncate(size int64) error {
	if err, _ := f.t.check(OpTruncate); err != nil {
		return err
	}
	return f.File.Truncate(size)
}
