// Package fsx abstracts the filesystem operations the durability layer
// depends on (segment store, write-ahead log, checkpoints) behind a
// small interface, so every failure path the real world can produce —
// torn writes, ENOSPC mid-append, a failing fsync, a crash that
// freezes the on-disk image — is reproducible in tests.
//
// Three implementations:
//
//   - OS: the real filesystem (the production default);
//   - MemFS: an in-memory filesystem that distinguishes written from
//     synced bytes and can simulate a crash (Crash reverts every file
//     to its last-synced image);
//   - FaultFS: a wrapper that injects failures into another FS on the
//     Nth matching operation (error, short/torn write, frozen image).
//
// Concurrency contract: MemFS and FaultFS are internally locked and
// safe for concurrent use from multiple goroutines; OS delegates to
// package os and inherits its guarantees. Individual File handles are
// NOT synchronized — like *os.File, a handle belongs to one goroutine
// at a time (the durability layer's single-writer discipline upholds
// this).
//
// Durability contract: bytes written but not Synced are volatile —
// MemFS.Crash discards them, modelling a power loss with a dirty page
// cache. Rename is modelled as atomic and immediately durable — the
// journalled-filesystem ordering the atomic-checkpoint pattern
// (write tmp, sync, rename) relies on.
package fsx

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the subset of *os.File the durability layer uses. Writes go
// through the current offset (or the end when the file was opened with
// os.O_APPEND); ReadAt/WriteAt are offset-addressed and do not move it.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer

	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes written data to stable storage. Data not yet synced
	// is lost by a crash (see MemFS.Crash).
	Sync() error
	// Truncate changes the file size.
	Truncate(size int64) error
}

// FS is the filesystem surface of the durability layer. All paths are
// interpreted like package os does.
type FS interface {
	// OpenFile is the general open call, mirroring os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// Create truncates or creates a file for writing.
	Create(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists the names (not paths) of directory entries,
	// sorted ascending.
	ReadDir(name string) ([]string, error)
}

// OS is the real filesystem.
type OS struct{}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]string, error) {
	entries, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// BestEffortRemove removes name and deliberately ignores failure. It
// is for clearing debris on an already-failing path — a temp
// checkpoint after a failed write, a stillborn segment after a failed
// header sync — where the original error is what the caller reports
// and every recovery path already tolerates the leftover file
// (stillborn segments and .tmp files are detected and replaced on the
// next open). Using this helper instead of discarding the error inline
// keeps the durabilityerr analyzer's contract meaningful: an ignored
// removal is always a named, documented decision.
func BestEffortRemove(f FS, name string) {
	//provlint:ignore durabilityerr best-effort debris cleanup; the caller reports the original failure and recovery tolerates leftovers
	_ = f.Remove(name)
}

// Default returns f, or the real filesystem when f is nil — the
// convention every Options struct in the durability layer follows.
func Default(f FS) FS {
	if f == nil {
		return OS{}
	}
	return f
}

// notExist builds the canonical does-not-exist error for path, matching
// errors.Is(err, fs.ErrNotExist) like package os.
func notExist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrNotExist}
}

// exist builds the canonical already-exists error for path.
func exist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrExist}
}

// clean normalises a path so MemFS lookups are consistent across
// spellings ("dir//f", "./dir/f", ...).
func clean(p string) string { return filepath.Clean(p) }
