package fsx

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"testing"
)

func TestMemFSBasicRoundtrip(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("a/b/x.dat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := m.Open("a/b/x.dat")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("content = %q", got)
	}
	var at [5]byte
	if _, err := g.ReadAt(at[:], 6); err != nil {
		t.Fatal(err)
	}
	if string(at[:]) != "world" {
		t.Fatalf("ReadAt = %q", at)
	}

	names, err := m.ReadDir("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "x.dat" {
		t.Fatalf("ReadDir = %v", names)
	}

	if _, err := m.Open("a/b/missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file error = %v", err)
	}
	if _, err := m.OpenFile("a/b/x.dat", os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("O_EXCL on existing = %v", err)
	}
}

func TestMemFSCrashLosesUnsynced(t *testing.T) {
	m := NewMem()
	f, err := m.Create("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable|"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("volatile"))
	// Never synced after the second write.
	m.Crash()

	got, err := m.ReadFile("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable|" {
		t.Fatalf("after crash content = %q, want synced prefix only", got)
	}
}

func TestMemFSCrashRemovesNeverSyncedFiles(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("never-synced.tmp")
	f.Write([]byte("gone"))
	f.Close()
	m.Crash()
	if _, err := m.ReadFile("never-synced.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("never-synced file survived crash: err=%v", err)
	}
}

func TestMemFSRenameReplaces(t *testing.T) {
	m := NewMem()
	m.WriteFile("ckpt", []byte("old"))
	m.WriteFile("ckpt.tmp", []byte("new"))
	if err := m.Rename("ckpt.tmp", "ckpt"); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadFile("ckpt")
	if string(got) != "new" {
		t.Fatalf("after rename = %q", got)
	}
	if _, err := m.ReadFile("ckpt.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("source survived rename: %v", err)
	}
}

func TestMemFSAppendMode(t *testing.T) {
	m := NewMem()
	m.WriteFile("log", []byte("abc"))
	f, err := m.OpenFile("log", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("def"))
	got, _ := m.ReadFile("log")
	if string(got) != "abcdef" {
		t.Fatalf("append result = %q", got)
	}
}

func TestFaultTripsNthOp(t *testing.T) {
	m := NewMem()
	ff := NewFault(m)
	f, err := ff.Create("x") // open #1
	if err != nil {
		t.Fatal(err)
	}
	ff.Arm(3, Fault{}, OpWrite)
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd write err = %v, want injected", err)
	}
	if !ff.Tripped() {
		t.Fatal("not tripped")
	}
	// One-shot fault: the next write succeeds.
	if _, err := f.Write([]byte("after")); err != nil {
		t.Fatalf("post-trip write = %v, want nil (no freeze)", err)
	}
}

func TestFaultFreezeLatches(t *testing.T) {
	m := NewMem()
	ff := NewFault(m)
	f, _ := ff.Create("x")
	ff.Arm(1, Fault{Err: ErrNoSpace, Freeze: true}, OpWrite, OpSync)
	if _, err := f.Write([]byte("a")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("frozen sync err = %v", err)
	}
	ff.Disarm()
	if _, err := f.Write([]byte("b")); err != nil {
		t.Fatalf("post-disarm write = %v", err)
	}
}

func TestFaultTornWrite(t *testing.T) {
	m := NewMem()
	ff := NewFault(m)
	f, _ := ff.Create("x")
	ff.Arm(1, Fault{TornBytes: 3}, OpWrite)
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if n != 3 {
		t.Fatalf("short write n = %d, want 3", n)
	}
	got, _ := m.ReadFile("x")
	if string(got) != "abc" {
		t.Fatalf("on-disk prefix = %q, want abc", got)
	}
}

func TestFaultCountsOps(t *testing.T) {
	m := NewMem()
	ff := NewFault(m)
	f, _ := ff.Create("x")
	f.Write([]byte("1"))
	f.Write([]byte("2"))
	f.Sync()
	if got := ff.OpCount(OpWrite); got != 2 {
		t.Fatalf("write count = %d", got)
	}
	if got := ff.OpCount(OpSync); got != 1 {
		t.Fatalf("sync count = %d", got)
	}
	if got := ff.TotalOps(); got != 4 { // open + 2 writes + sync
		t.Fatalf("total = %d", got)
	}
}

// OS and MemFS must behave identically on the happy path the storage
// layer uses; run the same sequence through both.
func TestOSAndMemParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		fs   FS
	}{
		{"os", prefixed(t)},
		{"mem", NewMem()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fsys := tc.fs
			if err := fsys.MkdirAll("d", 0o755); err != nil {
				t.Fatal(err)
			}
			f, err := fsys.OpenFile("d/seg", os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte("0123456789"))
			f.Sync()
			f.Close()

			g, err := fsys.OpenFile("d/seg", os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Truncate(4); err != nil {
				t.Fatal(err)
			}
			if _, err := g.Seek(0, io.SeekEnd); err != nil {
				t.Fatal(err)
			}
			g.Write([]byte("ab"))
			g.Close()

			r, _ := fsys.Open("d/seg")
			got, _ := io.ReadAll(r)
			if string(got) != "0123ab" {
				t.Fatalf("content = %q", got)
			}
			names, err := fsys.ReadDir("d")
			if err != nil || len(names) != 1 || names[0] != "seg" {
				t.Fatalf("ReadDir = %v, %v", names, err)
			}
		})
	}
}

// prefixed returns the real FS rooted in a fresh temp dir by rewriting
// paths — enough for the parity test's relative names.
func prefixed(t *testing.T) FS {
	t.Helper()
	return &prefixFS{dir: t.TempDir()}
}

type prefixFS struct{ dir string }

func (p *prefixFS) path(n string) string { return p.dir + "/" + n }

func (p *prefixFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return OS{}.OpenFile(p.path(name), flag, perm)
}
func (p *prefixFS) Open(name string) (File, error)   { return OS{}.Open(p.path(name)) }
func (p *prefixFS) Create(name string) (File, error) { return OS{}.Create(p.path(name)) }
func (p *prefixFS) Rename(o, n string) error         { return OS{}.Rename(p.path(o), p.path(n)) }
func (p *prefixFS) Remove(name string) error         { return OS{}.Remove(p.path(name)) }
func (p *prefixFS) MkdirAll(name string, perm os.FileMode) error {
	return OS{}.MkdirAll(p.path(name), perm)
}
func (p *prefixFS) ReadDir(name string) ([]string, error) { return OS{}.ReadDir(p.path(name)) }
