package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"provex/internal/tweet"
)

// jsonRecord is the on-disk JSONL shape of one message. Only the raw
// fields are stored; indicants are re-extracted on load so the parser is
// the single source of truth for entity extraction.
type jsonRecord struct {
	ID   uint64 `json:"id"`
	Date string `json:"date"` // RFC3339
	User string `json:"user"`
	Text string `json:"text"`
}

// WriteJSONL writes every message from src to w, one JSON object per
// line, and returns the number written.
func WriteJSONL(w io.Writer, src Source) (int, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	n := 0
	for {
		m, err := src.Next()
		if err == io.EOF {
			return n, bw.Flush()
		}
		if err != nil {
			return n, err
		}
		rec := jsonRecord{
			ID:   uint64(m.ID),
			Date: m.Date.UTC().Format(time.RFC3339Nano),
			User: m.User,
			Text: m.Text,
		}
		if err := enc.Encode(&rec); err != nil {
			return n, err
		}
		n++
	}
}

// JSONLReader streams messages from a JSONL dataset file. It implements
// Source; malformed lines abort with a positioned error rather than
// being skipped silently.
type JSONLReader struct {
	sc   *bufio.Scanner
	line int
}

// NewJSONLReader reads from r. Lines up to 1 MiB are accepted.
func NewJSONLReader(r io.Reader) *JSONLReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &JSONLReader{sc: sc}
}

// Next implements Source.
func (j *JSONLReader) Next() (*tweet.Message, error) {
	for j.sc.Scan() {
		j.line++
		raw := j.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jsonRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", j.line, err)
		}
		date, err := time.Parse(time.RFC3339Nano, rec.Date)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad date: %w", j.line, err)
		}
		m := tweet.Parse(tweet.ID(rec.ID), rec.User, date, rec.Text)
		return m, nil
	}
	if err := j.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}
