package stream

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"provex/internal/gen"
	"provex/internal/tweet"
)

func genMessages(n int) []*tweet.Message {
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 5000
	cfg.Users = 500
	cfg.VocabSize = 800
	cfg.EventsPerDay = 200
	return gen.New(cfg).Generate(n)
}

func TestSliceSource(t *testing.T) {
	msgs := genMessages(10)
	src := NewSliceSource(msgs)
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, msgs) {
		t.Error("drained messages differ from input")
	}
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("exhausted source returned %v, want io.EOF", err)
	}
	src.Reset()
	if m, err := src.Next(); err != nil || m != msgs[0] {
		t.Errorf("after Reset got (%v, %v), want first message", m, err)
	}
}

func TestLimit(t *testing.T) {
	msgs := genMessages(10)
	got, err := Drain(Limit(NewSliceSource(msgs), 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("Limit(4) yielded %d messages", len(got))
	}
	if got2, _ := Drain(Limit(NewSliceSource(msgs), 99)); len(got2) != 10 {
		t.Fatalf("Limit beyond length yielded %d, want 10", len(got2))
	}
}

func TestTee(t *testing.T) {
	msgs := genMessages(7)
	var seen int
	src := Tee(NewSliceSource(msgs), func(*tweet.Message) { seen++ })
	if _, err := Drain(src); err != nil {
		t.Fatal(err)
	}
	if seen != 7 {
		t.Errorf("observer saw %d messages, want 7", seen)
	}
}

func TestFuncSourceWithLimit(t *testing.T) {
	i := 0
	f := FuncSource(func() *tweet.Message {
		i++
		return &tweet.Message{ID: tweet.ID(i), User: "u", Text: "x", Date: time.Unix(int64(i), 0)}
	})
	got, err := Drain(Limit(f, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[4].ID != 5 {
		t.Fatalf("FuncSource/Limit yielded %d messages, last %v", len(got), got[len(got)-1])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	msgs := genMessages(500)
	var buf bytes.Buffer
	n, err := WriteJSONL(&buf, NewSliceSource(msgs))
	if err != nil || n != 500 {
		t.Fatalf("WriteJSONL = (%d, %v)", n, err)
	}
	got, err := Drain(NewJSONLReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("round trip lost messages: %d vs %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !reflect.DeepEqual(got[i], msgs[i]) {
			t.Fatalf("message %d differs after round trip:\n  in:  %+v\n  out: %+v", i, msgs[i], got[i])
		}
	}
}

func TestJSONLReaderSkipsBlankLines(t *testing.T) {
	input := `{"id":1,"date":"2009-08-01T00:00:00Z","user":"u","text":"hello"}

{"id":2,"date":"2009-08-01T00:00:01Z","user":"v","text":"world"}
`
	got, err := Drain(NewJSONLReader(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d messages, want 2", len(got))
	}
}

func TestJSONLReaderMalformed(t *testing.T) {
	cases := []string{
		"not json at all\n",
		`{"id":1,"date":"NOT A DATE","user":"u","text":"x"}` + "\n",
	}
	for _, input := range cases {
		_, err := Drain(NewJSONLReader(strings.NewReader(input)))
		if err == nil {
			t.Errorf("malformed input %q accepted", input)
		}
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if !c.Now().IsZero() {
		t.Error("zero clock should read zero time")
	}
	t1 := time.Date(2009, 9, 1, 12, 0, 0, 0, time.UTC)
	t0 := t1.Add(-time.Hour)
	c.Observe(&tweet.Message{Date: t1})
	c.Observe(&tweet.Message{Date: t0}) // late-arriving older message
	if !c.Now().Equal(t1) {
		t.Errorf("clock went backwards: %v", c.Now())
	}
}

// Property: JSONL round trip preserves arbitrary valid text content,
// including quotes, unicode and control characters JSON must escape.
func TestJSONLRoundTripProperty(t *testing.T) {
	date := time.Date(2009, 8, 15, 6, 30, 0, 0, time.UTC)
	f := func(text string, idRaw uint32) bool {
		if strings.TrimSpace(text) == "" || strings.ContainsAny(text, "\n\r") {
			return true // not a valid single-line message; skip
		}
		in := tweet.Parse(tweet.ID(idRaw), "quickuser", date, text)
		var buf bytes.Buffer
		if _, err := WriteJSONL(&buf, NewSliceSource([]*tweet.Message{in})); err != nil {
			return false
		}
		out, err := Drain(NewJSONLReader(&buf))
		if err != nil || len(out) != 1 {
			return false
		}
		return reflect.DeepEqual(in, out[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
