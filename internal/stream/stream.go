// Package stream provides the message-stream plumbing between dataset
// producers (the generator, dataset files) and consumers (the provenance
// engine, the text index): a Source iterator abstraction, JSONL and
// binary codecs, and composition helpers.
//
// The paper's simulation "imports the micro-blog messages into the
// system in a temporally ordered sequence; the latest message's date is
// simulated as the system's current date" — Clock implements exactly
// that convention.
package stream

import (
	"errors"
	"io"
	"time"

	"provex/internal/tweet"
)

// Source yields messages in date order. Next returns io.EOF after the
// last message; any other error is a stream fault.
type Source interface {
	Next() (*tweet.Message, error)
}

// SliceSource replays an in-memory slice.
type SliceSource struct {
	msgs []*tweet.Message
	pos  int
}

// NewSliceSource wraps msgs; the slice is not copied.
func NewSliceSource(msgs []*tweet.Message) *SliceSource {
	return &SliceSource{msgs: msgs}
}

// Next implements Source.
func (s *SliceSource) Next() (*tweet.Message, error) {
	if s.pos >= len(s.msgs) {
		return nil, io.EOF
	}
	m := s.msgs[s.pos]
	s.pos++
	return m, nil
}

// Reset rewinds the source to the first message.
func (s *SliceSource) Reset() { s.pos = 0 }

// FuncSource adapts a generator function to Source. The function must
// keep returning messages; use Limit to bound it.
type FuncSource func() *tweet.Message

// Next implements Source.
func (f FuncSource) Next() (*tweet.Message, error) { return f(), nil }

// Limit returns a Source producing at most n messages from src.
func Limit(src Source, n int) Source {
	return &limitSource{src: src, remaining: n}
}

type limitSource struct {
	src       Source
	remaining int
}

func (l *limitSource) Next() (*tweet.Message, error) {
	if l.remaining <= 0 {
		return nil, io.EOF
	}
	l.remaining--
	return l.src.Next()
}

// Tee returns a Source that forwards src while calling observe on every
// message that passes through (metrics, ground-truth capture).
func Tee(src Source, observe func(*tweet.Message)) Source {
	return &teeSource{src: src, observe: observe}
}

type teeSource struct {
	src     Source
	observe func(*tweet.Message)
}

func (t *teeSource) Next() (*tweet.Message, error) {
	m, err := t.src.Next()
	if err == nil {
		t.observe(m)
	}
	return m, err
}

// Drain pulls every message from src into a slice. It is intended for
// tests and small datasets; multi-million message runs should stream.
func Drain(src Source) ([]*tweet.Message, error) {
	var out []*tweet.Message
	for {
		m, err := src.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
}

// CloneSlice deep-copies a message slice. Benchmarks and experiments
// that replay one generated stream through several engines need it:
// engines annotate and retain the messages they ingest, so each run
// must get its own copies.
func CloneSlice(msgs []*tweet.Message) []*tweet.Message {
	out := make([]*tweet.Message, len(msgs))
	for i, m := range msgs {
		out[i] = m.Clone()
	}
	return out
}

// Clock tracks simulated time per the paper's replay convention: the
// newest message date observed so far is "now". The zero Clock reads as
// the zero time until fed.
type Clock struct {
	now time.Time
}

// Observe advances the clock to m's date if it is newer.
func (c *Clock) Observe(m *tweet.Message) {
	if m.Date.After(c.now) {
		c.now = m.Date
	}
}

// Now returns the simulated current time.
func (c *Clock) Now() time.Time { return c.now }

// AdvanceTo moves the clock forward to t; older instants are ignored.
// Checkpoint restore uses it to resume simulated time.
func (c *Clock) AdvanceTo(t time.Time) {
	if t.After(c.now) {
		c.now = t
	}
}
