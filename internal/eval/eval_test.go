package eval

import (
	"math"
	"testing"
	"testing/quick"

	"provex/internal/score"
	"provex/internal/tweet"
)

func setOf(edges ...[2]int) *EdgeSet {
	s := NewEdgeSet()
	for _, e := range edges {
		s.Add(tweet.ID(e[0]), tweet.ID(e[1]))
	}
	return s
}

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet()
	if s.Len() != 0 {
		t.Fatal("fresh set not empty")
	}
	s.Add(1, 2)
	s.Add(1, 2) // duplicate
	s.Observe(3, 4, score.ConnRT)
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(Edge{1, 2}) || s.Contains(Edge{2, 1}) {
		t.Error("Contains wrong (edges are directed)")
	}
}

func TestIntersectCount(t *testing.T) {
	a := setOf([2]int{1, 2}, [2]int{3, 4}, [2]int{5, 6})
	b := setOf([2]int{3, 4}, [2]int{5, 6}, [2]int{7, 8}, [2]int{9, 10})
	if got := a.IntersectCount(b); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}
	if got := b.IntersectCount(a); got != 2 {
		t.Errorf("IntersectCount not symmetric: %d", got)
	}
	if got := a.IntersectCount(NewEdgeSet()); got != 0 {
		t.Errorf("intersection with empty = %d", got)
	}
}

func TestCompare(t *testing.T) {
	truth := setOf([2]int{1, 2}, [2]int{3, 4}, [2]int{5, 6}, [2]int{7, 8})
	method := setOf([2]int{1, 2}, [2]int{3, 4}, [2]int{9, 10})
	m := Compare(method, truth)
	if math.Abs(m.Accuracy-2.0/3.0) > 1e-12 {
		t.Errorf("Accuracy = %v, want 2/3", m.Accuracy)
	}
	if math.Abs(m.Return-0.5) > 1e-12 {
		t.Errorf("Return = %v, want 0.5", m.Return)
	}
	if m.Matched != 2 || m.Found != 3 || m.Truth != 4 {
		t.Errorf("counts = %+v", m)
	}
}

func TestCompareEmptySets(t *testing.T) {
	m := Compare(NewEdgeSet(), NewEdgeSet())
	if m.Accuracy != 1 || m.Return != 1 {
		t.Errorf("empty/empty = %+v, want accuracy=return=1", m)
	}
	m = Compare(NewEdgeSet(), setOf([2]int{1, 2}))
	if m.Accuracy != 1 || m.Return != 0 {
		t.Errorf("empty method = %+v", m)
	}
	m = Compare(setOf([2]int{1, 2}), NewEdgeSet())
	if m.Accuracy != 0 || m.Return != 1 {
		t.Errorf("empty truth = %+v", m)
	}
}

func TestMetricsString(t *testing.T) {
	s := Compare(setOf([2]int{1, 2}), setOf([2]int{1, 2})).String()
	if s == "" {
		t.Error("empty String")
	}
}

func TestCollectorCheckpoints(t *testing.T) {
	method, truth := NewEdgeSet(), NewEdgeSet()
	c := NewCollector(10, method, truth)
	for i := 0; i < 25; i++ {
		// Grow both sets so successive checkpoints measure fresh state.
		truth.Add(tweet.ID(i), tweet.ID(i+1000))
		if i%2 == 0 {
			method.Add(tweet.ID(i), tweet.ID(i+1000))
		}
		c.Tick()
	}
	c.Finish()
	pts := c.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3 (10, 20, 25)", len(pts))
	}
	if pts[0].Messages != 10 || pts[1].Messages != 20 || pts[2].Messages != 25 {
		t.Errorf("checkpoint positions = %v", pts)
	}
	for _, p := range pts {
		if p.Metrics.Accuracy != 1 {
			t.Errorf("subset method accuracy = %v, want 1", p.Metrics.Accuracy)
		}
		if p.Metrics.Return < 0.4 || p.Metrics.Return > 0.6 {
			t.Errorf("return = %v, want ~0.5", p.Metrics.Return)
		}
	}
}

func TestCollectorFinishIdempotentOnBoundary(t *testing.T) {
	c := NewCollector(5, NewEdgeSet(), NewEdgeSet())
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	c.Finish()
	if got := len(c.Points()); got != 2 {
		t.Errorf("points = %d, want 2 (no duplicate final sample)", got)
	}
}

func TestCollectorDefaultInterval(t *testing.T) {
	c := NewCollector(0, NewEdgeSet(), NewEdgeSet())
	c.Tick()
	if len(c.Points()) != 1 {
		t.Error("interval 0 should clamp to 1")
	}
}

// Property: accuracy and return are always within [0,1], and a method
// equal to the truth scores 1/1.
func TestCompareBoundsProperty(t *testing.T) {
	f := func(truthPairs, extraPairs []uint16) bool {
		truth := NewEdgeSet()
		for i, p := range truthPairs {
			truth.Add(tweet.ID(p), tweet.ID(uint32(p)+uint32(i)+100000))
		}
		method := NewEdgeSet()
		for e := range truth.edges {
			method.Add(e.Parent, e.Child)
		}
		m := Compare(method, truth)
		if m.Accuracy != 1 || m.Return != 1 {
			return false
		}
		for i, p := range extraPairs {
			method.Add(tweet.ID(uint32(p)+200000), tweet.ID(uint32(i)+300000))
		}
		m = Compare(method, truth)
		return m.Accuracy >= 0 && m.Accuracy <= 1 && m.Return >= 0 && m.Return <= 1 &&
			m.Return == 1 // superset still returns all truth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: |Ei ∩ E0| ≤ min(|Ei|, |E0|).
func TestIntersectBoundProperty(t *testing.T) {
	f := func(a, b []uint16) bool {
		sa, sb := NewEdgeSet(), NewEdgeSet()
		for _, p := range a {
			sa.Add(tweet.ID(p%50), tweet.ID(p%50+1000))
		}
		for _, p := range b {
			sb.Add(tweet.ID(p%50), tweet.ID(p%50+1000))
		}
		n := sa.IntersectCount(sb)
		min := sa.Len()
		if sb.Len() < min {
			min = sb.Len()
		}
		return n <= min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
