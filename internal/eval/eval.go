// Package eval implements the paper's provenance-quality evaluation
// (Section VI-B): each method's output is its set of discovered message
// connections; the Full Index method's output E0 is ground truth, and
// an approximation method with output Ei is scored by
//
//	accuracy = |Ei ∩ E0| / |Ei|   (how much of what it found is right)
//	return   = |Ei ∩ E0| / |E0|   (how much of the truth it found)
//
// EdgeSet collects connections via the engine's edge callback;
// Collector samples both metrics at checkpoints along the stream, which
// is exactly how Figure 8 plots accuracy/return against incoming
// messages.
package eval

import (
	"fmt"

	"provex/internal/score"
	"provex/internal/tweet"
)

// Edge is one provenance connection in (parent, child) form. Child IDs
// are unique per stream (a message has at most one parent, Definition
// 3's max-scored connection), so the pair identifies the edge.
type Edge struct {
	Parent tweet.ID
	Child  tweet.ID
}

// EdgeSet is a set of provenance connections.
type EdgeSet struct {
	edges map[Edge]struct{}
}

// NewEdgeSet returns an empty set.
func NewEdgeSet() *EdgeSet {
	return &EdgeSet{edges: make(map[Edge]struct{})}
}

// Observe is an engine-compatible EdgeFunc that records each discovered
// connection.
func (s *EdgeSet) Observe(parent, child tweet.ID, _ score.ConnectionType) {
	s.edges[Edge{Parent: parent, Child: child}] = struct{}{}
}

// Add inserts an edge directly.
func (s *EdgeSet) Add(parent, child tweet.ID) {
	s.edges[Edge{Parent: parent, Child: child}] = struct{}{}
}

// Len returns the number of edges.
func (s *EdgeSet) Len() int { return len(s.edges) }

// Contains reports membership.
func (s *EdgeSet) Contains(e Edge) bool {
	_, ok := s.edges[e]
	return ok
}

// IntersectCount returns |s ∩ other| without materialising the
// intersection.
func (s *EdgeSet) IntersectCount(other *EdgeSet) int {
	small, big := s, other
	if big.Len() < small.Len() {
		small, big = big, small
	}
	n := 0
	for e := range small.edges {
		if _, ok := big.edges[e]; ok {
			n++
		}
	}
	return n
}

// Metrics is one accuracy/return measurement of a method against the
// ground truth.
type Metrics struct {
	Accuracy float64 // |Ei ∩ E0| / |Ei|; 1 when Ei is empty
	Return   float64 // |Ei ∩ E0| / |E0|; 1 when E0 is empty
	Matched  int     // |Ei ∩ E0| — the matched-pair bars of Figure 8
	Found    int     // |Ei|
	Truth    int     // |E0|
}

// Compare scores method output ei against ground truth e0.
func Compare(ei, e0 *EdgeSet) Metrics {
	m := Metrics{Found: ei.Len(), Truth: e0.Len(), Accuracy: 1, Return: 1}
	m.Matched = ei.IntersectCount(e0)
	if m.Found > 0 {
		m.Accuracy = float64(m.Matched) / float64(m.Found)
	}
	if m.Truth > 0 {
		m.Return = float64(m.Matched) / float64(m.Truth)
	}
	return m
}

// String renders the measurement.
func (m Metrics) String() string {
	return fmt.Sprintf("accuracy=%.3f return=%.3f matched=%d found=%d truth=%d",
		m.Accuracy, m.Return, m.Matched, m.Found, m.Truth)
}

// Checkpoint is one sampled point along the stream.
type Checkpoint struct {
	Messages int // messages ingested when the sample was taken
	Metrics  Metrics
}

// Collector samples a method's metrics against ground truth every
// Interval messages. Drive it by calling Tick after each message.
type Collector struct {
	Interval int
	method   *EdgeSet
	truth    *EdgeSet
	seen     int
	points   []Checkpoint
}

// NewCollector builds a collector sampling every interval messages.
func NewCollector(interval int, method, truth *EdgeSet) *Collector {
	if interval <= 0 {
		interval = 1
	}
	return &Collector{Interval: interval, method: method, truth: truth}
}

// Tick advances the message count and samples at checkpoint boundaries.
func (c *Collector) Tick() {
	c.seen++
	if c.seen%c.Interval == 0 {
		c.points = append(c.points, Checkpoint{Messages: c.seen, Metrics: Compare(c.method, c.truth)})
	}
}

// Finish takes a final sample if the stream did not end on a boundary.
func (c *Collector) Finish() {
	if len(c.points) == 0 || c.points[len(c.points)-1].Messages != c.seen {
		c.points = append(c.points, Checkpoint{Messages: c.seen, Metrics: Compare(c.method, c.truth)})
	}
}

// Points returns the sampled checkpoints in stream order.
func (c *Collector) Points() []Checkpoint { return c.points }
