package quality

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"provex/internal/bundle"
	"provex/internal/gen"
	"provex/internal/score"
	"provex/internal/tokenizer"
	"provex/internal/tweet"
)

var (
	base    = time.Date(2009, 9, 29, 0, 0, 0, 0, time.UTC)
	weights = score.DefaultMessageWeights()
)

func doc(id tweet.ID, user, text string, offset time.Duration) score.Doc {
	m := tweet.Parse(id, user, base.Add(offset), text)
	return score.Doc{Msg: m, Keywords: tokenizer.Keywords(text)}
}

// richBundle: multi-author cascade with re-shares and substance.
func richBundle() *bundle.Bundle {
	b := bundle.New(1)
	b.Add(weights, doc(1, "reuters_alert", "magnitude 8 quake triggers tsunami warning for samoa coast #samoa http://bit.ly/quake", 0))
	b.Add(weights, doc(2, "bob", "stay safe everyone RT @reuters_alert: magnitude 8 quake triggers tsunami warning for samoa coast #samoa", time.Minute))
	b.Add(weights, doc(3, "carol", "RT @bob: stay safe everyone RT @reuters_alert: magnitude 8 quake triggers tsunami warning", 2*time.Minute))
	b.Add(weights, doc(4, "dave", "rescue teams deploying to the samoa coast now #samoa http://ow.ly/rescue", 3*time.Minute))
	b.Add(weights, doc(5, "erin", "relief donations open for samoa quake victims #samoa", 4*time.Minute))
	return b
}

// noiseBundle: one author, isolated fragments.
func noiseBundle() *bundle.Bundle {
	b := bundle.New(2)
	b.Add(weights, doc(10, "spammer", "ugh", 0))
	b.Add(weights, doc(11, "spammer", "lol whatever", 90*time.Minute))
	b.Add(weights, doc(12, "spammer", "sigh", 300*time.Minute))
	return b
}

func TestMessageSubstance(t *testing.T) {
	rich := doc(1, "u", "magnitude 8 quake triggers tsunami warning for samoa #samoa http://bit.ly/x", 0)
	noise := doc(2, "u", "ugh", 0)
	rs, ns := MessageSubstance(rich), MessageSubstance(noise)
	if rs <= ns {
		t.Errorf("substance: rich %v <= noise %v", rs, ns)
	}
	if ns != 0 {
		t.Errorf("pure interjection substance = %v, want 0", ns)
	}
	if rs < 0 || rs > 1 {
		t.Errorf("substance out of range: %v", rs)
	}
	// RT with a comment earns the comment credit.
	rtWith := doc(3, "u", "so scary RT @a: quake warning issued", 0)
	rtBare := doc(4, "u", "RT @a: quake warning issued", 0)
	if MessageSubstance(rtWith) <= MessageSubstance(rtBare) {
		t.Error("commented RT should outscore bare RT")
	}
}

func TestScoreMessagesEndorsement(t *testing.T) {
	b := richBundle()
	scores := ScoreMessages(b, DefaultWeights())
	if len(scores) != 5 {
		t.Fatalf("scores = %d", len(scores))
	}
	// The root alert earned the whole cascade: it must rank first.
	if scores[0].ID != 1 {
		t.Errorf("top message = %d, want the root alert (%+v)", scores[0].ID, scores[0])
	}
	if scores[0].Endorsement != 1 {
		t.Errorf("root endorsement = %v, want 1 (max-normalised)", scores[0].Endorsement)
	}
	for _, s := range scores {
		if s.Score < 0 || s.Score > 1 {
			t.Errorf("score out of range: %+v", s)
		}
	}
}

func TestScoreBundleRichVsNoise(t *testing.T) {
	w := DefaultWeights()
	rich := ScoreBundle(richBundle(), w)
	noise := ScoreBundle(noiseBundle(), w)
	if rich.Score <= noise.Score {
		t.Errorf("rich bundle %.3f not above noise bundle %.3f", rich.Score, noise.Score)
	}
	if rich.Diversity <= noise.Diversity {
		t.Errorf("diversity: rich %v <= noise %v", rich.Diversity, noise.Diversity)
	}
	if noise.Sources != 0 {
		t.Errorf("all-singleton bundle sources = %v, want 0", noise.Sources)
	}
	for _, s := range []BundleScore{rich, noise} {
		for name, v := range map[string]float64{
			"endorsement": s.Endorsement, "sources": s.Sources,
			"diversity": s.Diversity, "substance": s.Substance, "score": s.Score,
		} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("bundle %d %s = %v out of range", s.Bundle, name, v)
			}
		}
	}
	if out := rich.String(); !strings.Contains(out, "credibility=") {
		t.Errorf("String = %q", out)
	}
}

func TestScoreBundleEmpty(t *testing.T) {
	s := ScoreBundle(bundle.New(9), DefaultWeights())
	if s.Score != 0 {
		t.Errorf("empty bundle score = %v", s.Score)
	}
}

func TestRankBundles(t *testing.T) {
	ranked := RankBundles([]*bundle.Bundle{noiseBundle(), richBundle()}, DefaultWeights())
	if len(ranked) != 2 || ranked[0].Bundle != 1 {
		t.Errorf("RankBundles = %+v, want rich bundle first", ranked)
	}
}

func TestWeightsNormalize(t *testing.T) {
	w := Weights{Endorsement: 2, Sources: 2, Diversity: 2, Substance: 2}.Normalize()
	sum := w.Endorsement + w.Sources + w.Diversity + w.Substance
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("normalised sum = %v", sum)
	}
	if d := (Weights{}).Normalize(); d != DefaultWeights() {
		t.Errorf("zero weights should fall back to defaults, got %+v", d)
	}
}

// Property: bundle scores stay in [0,1] over generator-built bundles of
// any size, and adding endorsement (a deeper cascade) never lowers the
// endorsement component versus an all-singleton bundle.
func TestScoreBoundsProperty(t *testing.T) {
	cfg := gen.DefaultConfig()
	cfg.MsgsPerDay = 20000
	cfg.EventsPerDay = 400
	g := gen.New(cfg)
	w := DefaultWeights()
	f := func(sizeRaw uint8) bool {
		size := int(sizeRaw%25) + 1
		b := bundle.New(1)
		for i := 0; i < size; i++ {
			m := g.Next()
			b.Add(weights, score.Doc{Msg: m, Keywords: tokenizer.Keywords(m.Text)})
		}
		s := ScoreBundle(b, w)
		vals := []float64{s.Endorsement, s.Sources, s.Diversity, s.Substance, s.Score}
		for _, v := range vals {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		msgs := ScoreMessages(b, w)
		for _, m := range msgs {
			if m.Score < 0 || m.Score > 1 {
				return false
			}
		}
		return len(msgs) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
