// Package quality implements the paper's quality-identification use
// case (Introduction, "Quality Identification", and the conclusion's
// "social provenance tools to enable collaborative data quality
// assessments"): credibility scoring for messages and bundles derived
// from provenance structure rather than content alone.
//
// The signals are exactly the ones the paper argues provenance makes
// available — "the sources, developments and user feedbacks collected
// from provenance discovery":
//
//   - endorsement: how much downstream propagation a message earned,
//     with explicit re-shares weighted above topical follow-ups;
//   - source corroboration: how many independent trails (sources) a
//     bundle contains;
//   - author diversity: many distinct voices beat one prolific account;
//   - substance: indicant-bearing, keyword-rich messages versus short
//     noise fragments ("ugh #redsox").
//
// Scores are in [0,1] and deterministic.
package quality

import (
	"fmt"
	"math"
	"sort"

	"provex/internal/bundle"
	"provex/internal/provops"
	"provex/internal/score"
	"provex/internal/tweet"
)

// Weights tune the bundle credibility blend; they must sum to 1 for
// the score to stay in [0,1] (Normalize enforces it).
type Weights struct {
	Endorsement float64 // propagation earned by member messages
	Sources     float64 // independent-source corroboration
	Diversity   float64 // distinct-author ratio
	Substance   float64 // content substance of member messages
}

// DefaultWeights balance the four signals with a tilt toward
// endorsement, the paper's "collective intelligence existing in rich
// feedback".
func DefaultWeights() Weights {
	return Weights{Endorsement: 0.4, Sources: 0.2, Diversity: 0.2, Substance: 0.2}
}

// Normalize scales the weights to sum to 1; zero weights stay zero.
func (w Weights) Normalize() Weights {
	sum := w.Endorsement + w.Sources + w.Diversity + w.Substance
	if sum <= 0 {
		return DefaultWeights()
	}
	return Weights{
		Endorsement: w.Endorsement / sum,
		Sources:     w.Sources / sum,
		Diversity:   w.Diversity / sum,
		Substance:   w.Substance / sum,
	}
}

// MessageSubstance scores one message's content substance in [0,1]:
// keyword-rich, indicant-bearing messages score high; short interjection
// noise scores near zero. The shape is a saturating count of distinct
// evidence items (keywords capped at 5, plus hashtags, URLs, and the RT
// comment when present).
func MessageSubstance(d score.Doc) float64 {
	evidence := float64(min(len(d.Keywords), 5))
	evidence += 1.5 * float64(min(len(d.Msg.URLs), 2))
	evidence += 1.0 * float64(min(len(d.Msg.Hashtags), 2))
	if d.Msg.IsRT() && d.Msg.RTComment != "" {
		evidence++
	}
	// Saturating map to [0,1): 0 evidence -> 0, 5 -> ~0.63, 10 -> ~0.86.
	return 1 - math.Exp(-evidence/5)
}

// MessageScore is the credibility assessment of one message inside its
// bundle.
type MessageScore struct {
	ID          tweet.ID
	User        string
	Endorsement float64 // normalised downstream propagation
	Substance   float64
	Score       float64 // blended
}

// ScoreMessages assesses every message of the bundle. Endorsement is
// the message's downstream reach normalised by the largest reach in the
// bundle, with RT children counting double (an explicit re-share is a
// stronger endorsement than a topical follow-up, per Table II's
// ordering).
func ScoreMessages(b *bundle.Bundle, w Weights) []MessageScore {
	w = w.Normalize()
	nodes := b.Nodes()
	endorse := make([]float64, len(nodes))
	// Right-to-left accumulation: parents precede children.
	for i := len(nodes) - 1; i >= 0; i-- {
		if p := nodes[i].Parent; p != bundle.NoParent {
			weight := 1.0
			if nodes[i].Conn == score.ConnRT {
				weight = 2.0
			}
			endorse[p] += weight + endorse[i]
		}
	}
	var maxE float64
	for _, e := range endorse {
		if e > maxE {
			maxE = e
		}
	}
	out := make([]MessageScore, 0, len(nodes))
	for i, n := range nodes {
		e := 0.0
		if maxE > 0 {
			e = endorse[i] / maxE
		}
		sub := MessageSubstance(n.Doc)
		// Per-message blend: endorsement and substance, re-normalised
		// from the bundle weights.
		we, ws := w.Endorsement, w.Substance
		if we+ws == 0 {
			we, ws = 0.5, 0.5
		}
		blended := (we*e + ws*sub) / (we + ws)
		out = append(out, MessageScore{
			ID:          n.Doc.Msg.ID,
			User:        n.Doc.Msg.User,
			Endorsement: e,
			Substance:   sub,
			Score:       blended,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// BundleScore is the credibility assessment of a whole bundle.
type BundleScore struct {
	Bundle      bundle.ID
	Endorsement float64
	Sources     float64
	Diversity   float64
	Substance   float64
	Score       float64
}

// String renders the assessment.
func (s BundleScore) String() string {
	return fmt.Sprintf("bundle %d: credibility=%.3f (endorse=%.2f sources=%.2f diversity=%.2f substance=%.2f)",
		s.Bundle, s.Score, s.Endorsement, s.Sources, s.Diversity, s.Substance)
}

// ScoreBundle assesses a bundle's overall credibility.
func ScoreBundle(b *bundle.Bundle, w Weights) BundleScore {
	w = w.Normalize()
	out := BundleScore{Bundle: b.ID()}
	n := b.Size()
	if n == 0 {
		return out
	}
	nodes := b.Nodes()

	// Endorsement: fraction of messages that earned any downstream
	// propagation, smoothed by cascade virality.
	cs := provops.Cascade(b)
	nonLeaf := float64(n-cs.Leaves) / float64(n)
	out.Endorsement = clamp01(nonLeaf * (1 + cs.Virality) / 2)

	// Sources: corroboration saturates with independent trail count,
	// but a bundle that is ONLY isolated singletons (trees == size)
	// corroborates nothing.
	if cs.Trees < n {
		out.Sources = 1 - math.Exp(-float64(cs.Trees)/3)
	}

	// Diversity: distinct authors over messages.
	users := make(map[string]bool, n)
	for _, nd := range nodes {
		users[nd.Doc.Msg.User] = true
	}
	out.Diversity = float64(len(users)) / float64(n)

	// Substance: mean message substance.
	var sub float64
	for _, nd := range nodes {
		sub += MessageSubstance(nd.Doc)
	}
	out.Substance = sub / float64(n)

	out.Score = w.Endorsement*out.Endorsement +
		w.Sources*out.Sources +
		w.Diversity*out.Diversity +
		w.Substance*out.Substance
	return out
}

// RankBundles scores and orders bundles by credibility, best first.
func RankBundles(bs []*bundle.Bundle, w Weights) []BundleScore {
	out := make([]BundleScore, 0, len(bs))
	for _, b := range bs {
		out = append(out, ScoreBundle(b, w))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Bundle < out[j].Bundle
	})
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
