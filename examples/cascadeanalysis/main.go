// Cascadeanalysis: the paper's future-work directions in action
// (Section VII — provenance operators and social quality assessment).
// After ingesting a stream with a scripted breaking event, the example
// runs lineage operators over the event bundle (sources, deepest trail,
// influence ranking), then scores bundles and messages for credibility
// using provenance structure — separating the corroborated event from
// single-author noise.
//
// Run with:
//
//	go run ./examples/cascadeanalysis
package main

import (
	"fmt"
	"strings"
	"time"

	"provex/internal/bundle"
	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/provops"
	"provex/internal/quality"
	"provex/internal/query"
	"provex/internal/score"
)

func main() {
	cfg := gen.DefaultConfig()
	cfg.Scripts = []gen.EventScript{{
		Name:     "samoa tsunami",
		Hashtags: []string{"tsunami", "samoa"},
		Topic:    []string{"tsunami", "samoa", "quake", "warning", "rescue", "coast"},
		URLs:     3,
		Start:    2 * time.Hour,
		HalfLife: 6 * time.Hour,
		Weight:   40,
	}}
	g := gen.New(cfg)
	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	const total = 30_000
	for i := 0; i < total; i++ {
		proc.Insert(g.Next())
	}

	hits := proc.SearchBundles("tsunami samoa", 1)
	if len(hits) == 0 {
		panic("event bundle not found")
	}
	b, err := proc.Engine().Bundle(hits[0].ID)
	if err != nil {
		panic(err)
	}

	fmt.Printf("event bundle %d: %d messages, summary %v\n\n", b.ID(), b.Size(), b.SummaryWords(6))

	// --- lineage operators -------------------------------------------------
	stats := provops.Cascade(b)
	fmt.Println("cascade structure:", stats)
	fmt.Println(stats.DepthHistogramString())

	sources := provops.Sources(b)
	fmt.Printf("independent sources: %d (first: %s)\n", len(sources), sources[0].Msg())

	// Deepest trail: find a node at max depth and walk to its root.
	deepest := provops.NodeRef{Bundle: b}
	for i := range b.Nodes() {
		ref := provops.NodeRef{Bundle: b, Index: i}
		if provops.Depth(ref) > provops.Depth(deepest) {
			deepest = ref
		}
	}
	fmt.Printf("\ndeepest propagation trail (%d hops):\n", provops.Depth(deepest))
	for _, ref := range provops.PathToRoot(deepest) {
		fmt.Printf("  <- %s\n", ref.Msg())
	}

	fmt.Println("\ntop influencers in the event:")
	for i, inf := range provops.InfluenceRanking(b) {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-12s posts=%d triggered=%d reach=%d\n", inf.User, inf.Posts, inf.Triggered, inf.Reach)
	}

	// --- quality assessment ------------------------------------------------
	fmt.Println("\ncredibility: event bundle vs the noisiest small bundles")
	var bundles []*bundle.Bundle
	proc.Engine().Pool().All(func(pb *bundle.Bundle) {
		if pb.Size() <= 2 && len(bundles) < 4 {
			bundles = append(bundles, pb)
		}
	})
	bundles = append(bundles, b)
	for _, s := range quality.RankBundles(bundles, quality.DefaultWeights()) {
		fmt.Println(" ", s)
	}

	fmt.Println("\nmost credible messages inside the event bundle:")
	msgScores := quality.ScoreMessages(b, quality.DefaultWeights())
	for i, ms := range msgScores {
		if i >= 3 {
			break
		}
		ref, _ := provops.FindMessage(b, ms.ID)
		text := ref.Msg().Text
		if len(text) > 70 {
			text = text[:70] + "..."
		}
		fmt.Printf("  %.3f  @%s: %s\n", ms.Score, ms.User, text)
	}

	// --- merge operator ----------------------------------------------------
	// Analysts can merge trails judged to cover one event.
	others := proc.SearchBundles("tsunami samoa", 3)
	if len(others) > 1 {
		second, err := proc.Engine().Bundle(others[1].ID)
		if err == nil {
			merged := provops.Merge(999_999, b, second, score.DefaultMessageWeights())
			fmt.Printf("\nmerged bundles %d + %d -> %d messages, %s\n",
				b.ID(), second.ID(), merged.Size(), strings.Join(merged.SummaryWords(5), ", "))
		}
	}
}
