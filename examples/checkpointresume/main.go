// Checkpointresume: the stability machinery of Section V as a
// crash-recovery drill. An engine ingests half a stream, checkpoints,
// "crashes"; a second engine restores the checkpoint, ingests the rest,
// and the final state is compared against an uninterrupted reference
// run — demonstrating exact resume equivalence.
//
// Run with:
//
//	go run ./examples/checkpointresume
package main

import (
	"bytes"
	"fmt"
	"reflect"

	"provex/internal/core"
	"provex/internal/gen"
)

const (
	half  = 20_000
	total = 40_000
)

func newGen() *gen.Generator {
	cfg := gen.DefaultConfig()
	cfg.Seed = 42
	return gen.New(cfg)
}

func stripTimers(s core.Stats) core.Stats {
	s.MatchTime, s.PlaceTime, s.RefineTime = 0, 0, 0
	return s
}

func main() {
	cfg := core.PartialIndexConfig(1500)

	// Reference: one uninterrupted run.
	fmt.Println("reference run: ingesting", total, "messages without interruption...")
	gRef := newGen()
	ref := core.New(cfg, nil, nil)
	for i := 0; i < total; i++ {
		ref.Insert(gRef.Next())
	}

	// Interrupted run: half, checkpoint, "crash", restore, rest.
	fmt.Println("interrupted run: ingesting", half, "messages, then checkpointing...")
	gCkpt := newGen()
	first := core.New(cfg, nil, nil)
	for i := 0; i < half; i++ {
		first.Insert(gCkpt.Next())
	}
	var ckpt bytes.Buffer
	if err := first.WriteCheckpoint(&ckpt); err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint: %.1f KB for %d live bundles\n",
		float64(ckpt.Len())/1024, first.Snapshot().BundlesLive)
	fmt.Println("simulated crash; restoring into a fresh engine...")

	resumed, err := core.RestoreCheckpoint(cfg, nil, nil, bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		panic(err)
	}
	for i := half; i < total; i++ {
		resumed.Insert(gCkpt.Next())
	}

	// Compare.
	got := stripTimers(resumed.Snapshot())
	want := stripTimers(ref.Snapshot())
	fmt.Printf("\nreference: %d bundles created, %d edges, %d live, %d msgs in memory\n",
		want.BundlesCreated, want.EdgesCreated, want.BundlesLive, want.MessagesInMemory)
	fmt.Printf("resumed:   %d bundles created, %d edges, %d live, %d msgs in memory\n",
		got.BundlesCreated, got.EdgesCreated, got.BundlesLive, got.MessagesInMemory)
	if reflect.DeepEqual(got, want) {
		fmt.Println("\nresume equivalence: EXACT — the restored engine is indistinguishable")
	} else {
		fmt.Println("\nresume equivalence: FAILED — states diverged")
	}
}
