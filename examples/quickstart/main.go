// Quickstart: index a handful of micro-blog messages (the paper's
// Table I examples among them), let the provenance engine group them
// into bundles, then search at bundle granularity and render a
// provenance trail.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"provex/internal/core"
	"provex/internal/query"
	"provex/internal/tweet"
)

func main() {
	// A full (unlimited) provenance engine with the default scoring
	// weights, wrapped in a query processor that also maintains the
	// conventional message index.
	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())

	base := time.Date(2009, 9, 26, 0, 18, 0, 0, time.UTC)
	posts := []struct {
		user, text string
		offset     time.Duration
	}{
		{"wharman", "Lester down #redsox", 0},
		{"amaliebenjamin", "Lester getting an ovation from the #Yankee Stadium crowd as he gets to his feet. #redsox", 2 * time.Minute},
		{"abcdude", "Classy. Way it should be RT @AmalieBenjamin: Lester getting an ovation from the #Yankee Stadium crowd as he gets to his feet. #redsox", 5 * time.Minute},
		{"bren924", "WHEW!! RT @MLB: X-rays on Lester negative. Contusion of the right quad. Day to Day. #redsox", 48 * time.Minute},
		{"tonystarks40", "Yankee Magic, you can only find it at Yankee Stadium! THE YANKEES WIN!!!", 60 * time.Minute},
		{"baldpunk", "#Redsox - glee! - I put up awesome NY Yankee Stadium photos http://bit.ly/Uvcpr", 65 * time.Minute},
		{"trader", "stocks rally on earnings #markets", 70 * time.Minute},
	}
	for i, p := range posts {
		res := proc.Insert(tweet.Parse(tweet.ID(i+1), p.user, base.Add(p.offset), p.text))
		fmt.Printf("msg %d -> bundle %d (new=%v, conn=%s)\n", i+1, res.Bundle, res.Created, res.Conn)
	}

	fmt.Println("\n--- provenance bundle search: 'yankee redsox' (Fig. 2 behaviour) ---")
	hits := proc.SearchBundles("yankee redsox", 5)
	for _, h := range hits {
		fmt.Println(" ", h)
	}

	if len(hits) > 0 {
		fmt.Println("\n--- provenance trail of the top bundle ---")
		trail, err := proc.Trail(hits[0].ID)
		if err != nil {
			panic(err)
		}
		fmt.Print(trail)
	}

	fmt.Println("\n--- conventional message search: 'yankee redsox' (Fig. 1 behaviour) ---")
	for _, h := range proc.SearchMessages("yankee redsox", 5) {
		fmt.Printf("  %5.2f  %s\n", h.Score, h.Msg)
	}
}
