// Searchcompare: the paper's motivating contrast (Figures 1 vs 2).
// The same query is answered twice over the same stream — once as a
// conventional ranked message list, once as provenance bundles — to
// show how bundle results aggregate the noise fragments into readable,
// temporally organised units.
//
// Run with:
//
//	go run ./examples/searchcompare
package main

import (
	"fmt"
	"strings"
	"time"

	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/query"
)

func main() {
	cfg := gen.DefaultConfig()
	// A "yankee vs redsox game" style event: noisy fragments plus
	// re-shares, as in the paper's running example.
	cfg.Scripts = []gen.EventScript{{
		Name:     "yankee redsox game",
		Hashtags: []string{"redsox", "yankees"},
		Topic:    []string{"game", "win", "stadium", "crowd", "player", "score", "inning"},
		URLs:     2,
		Start:    time.Hour,
		HalfLife: 5 * time.Hour,
		Weight:   30,
	}}
	g := gen.New(cfg)

	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())
	const total = 25_000
	for i := 0; i < total; i++ {
		proc.Insert(g.Next())
	}
	st := proc.Engine().Snapshot()
	fmt.Printf("indexed %d messages into %d bundles (%d provenance edges)\n\n",
		st.Messages, st.BundlesLive, st.EdgesCreated)

	const q = "redsox yankees game"

	fmt.Printf("=== conventional message search (Fig. 1) for %q ===\n", q)
	msgHits := proc.SearchMessages(q, 8)
	for _, h := range msgHits {
		fmt.Printf("  %5.2f  %s\n", h.Score, h.Msg)
	}
	fmt.Printf("(%d isolated messages; fragments and re-shares interleave)\n\n", len(msgHits))

	fmt.Printf("=== provenance bundle search (Fig. 2) for %q ===\n", q)
	bHits := proc.SearchBundles(q, 5)
	for _, h := range bHits {
		fmt.Println(" ", h)
	}

	if len(bHits) > 0 {
		// The biggest bundle is the event; show the head of its trail.
		best := bHits[0]
		for _, h := range bHits {
			if h.Size > best.Size {
				best = h
			}
		}
		trail, err := proc.Trail(best.ID)
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n=== provenance trail of bundle %d (head) ===\n", best.ID)
		lines := strings.Split(trail, "\n")
		for i, line := range lines {
			if i >= 18 {
				fmt.Printf("  ... %d more lines\n", len(lines)-i)
				break
			}
			fmt.Println(line)
		}
	}
}
