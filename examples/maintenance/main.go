// Maintenance: the paper's Section V-B machinery in action. A
// bounded-pool engine ingests a stream far larger than its pool,
// Algorithm 3 refinement evicts aging bundles (deleting the tiny ones,
// flushing the rest to the on-disk back-end), and evicted bundles are
// then retrieved from disk — demonstrating the full memory/disk life
// cycle of Figure 4.
//
// Run with:
//
//	go run ./examples/maintenance
package main

import (
	"fmt"
	"os"

	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/storage"
)

func main() {
	dir, err := os.MkdirTemp("", "provex-maintenance")
	if err != nil {
		panic(err)
	}
	//provlint:ignore fsxdiscipline scratch-dir cleanup in an example; nothing durable lives here
	defer os.RemoveAll(dir)

	store, err := storage.Open(dir, storage.Options{SyncEvery: 64})
	if err != nil {
		panic(err)
	}
	defer store.Close()

	// A deliberately small pool (500 bundles) against 60k messages, so
	// refinement runs many times.
	cfg := core.BundleLimitConfig(500, 300)
	eng := core.New(cfg, store, nil)

	g := gen.New(gen.DefaultConfig())
	const total = 60_000
	for i := 1; i <= total; i++ {
		eng.Insert(g.Next())
		if i%15_000 == 0 {
			st := eng.Snapshot()
			fmt.Printf("%6d msgs: %4d live bundles, %5.1f MB in memory, %4d bundles on disk, refines=%d\n",
				i, st.BundlesLive, float64(st.MemTotal())/(1<<20), store.Count(), st.Pool.Refines)
		}
	}
	if err := eng.Err(); err != nil {
		panic(err)
	}

	st := eng.Snapshot()
	fmt.Printf("\npool eviction breakdown: tiny-deleted=%d closed-flushed=%d ranked-flushed=%d\n",
		st.Pool.DeletedTiny, st.Pool.FlushedClosed, st.Pool.FlushedRanked)
	fmt.Printf("disk store: %d bundles, %.1f MB live, %.1f MB dead\n",
		store.Count(), float64(store.LiveBytes())/(1<<20), float64(store.DeadBytes())/(1<<20))

	// Retrieve a flushed bundle from disk through the engine facade and
	// show that its provenance trail survived the round trip intact.
	ids := store.IDs()
	if len(ids) == 0 {
		fmt.Println("no bundles were flushed (stream too small for the pool)")
		return
	}
	// Pick the largest stored bundle for a meaningful trail.
	bestID := ids[0]
	bestSize := 0
	for _, id := range ids {
		b, err := store.Get(id)
		if err != nil {
			panic(err)
		}
		if b.Size() > bestSize {
			bestSize, bestID = b.Size(), id
		}
	}
	b, err := eng.Bundle(bestID)
	if err != nil {
		panic(err)
	}
	if err := b.Validate(); err != nil {
		panic(fmt.Sprintf("bundle %d failed validation after disk round trip: %v", bestID, err))
	}
	fmt.Printf("\nlargest flushed bundle (%d, %d messages) reloaded from disk and validated OK\n",
		bestID, b.Size())
	fmt.Printf("summary: %v\n", b.SummaryWords(8))

	// Compact the store and show dead bytes reclaimed.
	if err := store.Compact(); err != nil {
		panic(err)
	}
	fmt.Printf("after compaction: %.1f MB live, %.1f MB dead\n",
		float64(store.LiveBytes())/(1<<20), float64(store.DeadBytes())/(1<<20))
}
