// Eventmonitor: track a breaking event's propagation through the
// provenance index — the paper's Figure 10 scenario. A scripted
// "Samoa tsunami" event bursts inside an organic 70k-messages/day
// stream; the monitor samples the event bundle as it grows and finally
// renders its provenance trail, showing the re-share cascade and
// topic-connection structure the paper visualises.
//
// Run with:
//
//	go run ./examples/eventmonitor
package main

import (
	"fmt"
	"strings"
	"time"

	"provex/internal/core"
	"provex/internal/gen"
	"provex/internal/query"
)

func main() {
	cfg := gen.DefaultConfig()
	cfg.Scripts = []gen.EventScript{{
		Name:     "samoa tsunami",
		Hashtags: []string{"tsunami", "samoa"},
		Topic:    []string{"tsunami", "samoa", "quake", "warning", "rescue", "coast", "relief"},
		URLs:     3,
		Start:    2 * time.Hour,
		HalfLife: 6 * time.Hour,
		Weight:   40,
	}}
	g := gen.New(cfg)

	proc := query.New(core.New(core.FullIndexConfig(), nil, nil), query.DefaultOptions())

	const total = 40_000
	const sampleEvery = 8_000
	fmt.Println("monitoring query: 'tsunami samoa'")
	for i := 1; i <= total; i++ {
		proc.Insert(g.Next())
		if i%sampleEvery == 0 {
			hits := proc.SearchBundles("tsunami samoa", 1)
			if len(hits) == 0 {
				fmt.Printf("after %6d messages: event not yet visible\n", i)
				continue
			}
			h := hits[0]
			fmt.Printf("after %6d messages: bundle %d, %3d posts, last %s, summary: %s\n",
				i, h.ID, h.Size, h.LastPost.Format("01-02 15:04"),
				strings.Join(h.Summary[:min(5, len(h.Summary))], ", "))
		}
	}

	hits := proc.SearchBundles("tsunami samoa", 1)
	if len(hits) == 0 {
		fmt.Println("event bundle not found")
		return
	}
	trail, err := proc.Trail(hits[0].ID)
	if err != nil {
		panic(err)
	}
	fmt.Println("\n--- provenance trail (truncated to 25 lines) ---")
	lines := strings.Split(trail, "\n")
	for i, line := range lines {
		if i >= 25 {
			fmt.Printf("  ... %d more lines\n", len(lines)-i)
			break
		}
		fmt.Println(line)
	}

	// Show how the connection mix explains the propagation: RT edges
	// are explicit re-shares, hashtag/url edges topical diffusion.
	st := proc.Engine().Snapshot()
	fmt.Println("\nconnection mix over the whole stream:")
	for _, conn := range []string{"rt", "url", "hashtag", "text"} {
		fmt.Printf("  %-8s %d\n", conn, st.ConnCounts[conn])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
